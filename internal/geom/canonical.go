package geom

import (
	"encoding/binary"
	"sort"
)

// This file implements the canonical representations of Section 4
// (Definition 4.1, Lemmas 4.2–4.4). The point: a shallow shape (one with few
// sample points) is replaced by O(1) canonical pieces drawn from a universe
// of pieces whose size is near-linear in the number of points, so storing
// the distinct pieces seen during a pass costs Õ(n) — even when the stream
// carries Ω(n²) distinct shapes, as in the paper's Figure 1.2.
//
//   - Axis-parallel rectangles (Lemma 4.2): an x-interval tree over the
//     sample splits every rectangle at the highest tree node whose split
//     line it straddles, producing two "anchored" pieces. Distinct anchored
//     pieces number O(|S|·w²·log|S|) for w-shallow rectangles.
//
//   - Disks (Lemma 4.4 via Clarkson–Shor): shallow disks have only
//     O(|S|·w²) distinct projections, so dedup-by-projection suffices.
//
//   - α-fat triangles (Lemma 4.3): the exact EHR12 decomposition into nine
//     O(1)-description regions is substituted by the same
//     dedup-by-projection used for disks (see DESIGN.md §3); the measured
//     quantity the algorithm relies on — near-linearly many distinct stored
//     shallow projections — is preserved and reported by experiments E4/E5.

// XSplitTree is a balanced binary split tree over the x-coordinates of a
// point subset. Node i covers a contiguous range of the x-sorted points and
// splits it at the median x; rectangles straddling the split line at their
// topmost straddled node decompose into two pieces anchored on that line.
type XSplitTree struct {
	// xs are the distinct x-coordinates of the indexed points, sorted.
	xs []float64
}

// NewXSplitTree builds the tree over the given points (global coordinates of
// the sampled subset).
func NewXSplitTree(pts []Point) *XSplitTree {
	xs := make([]float64, 0, len(pts))
	for _, p := range pts {
		xs = append(xs, p.X)
	}
	sort.Float64s(xs)
	// Deduplicate.
	uniq := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			uniq = append(uniq, x)
		}
	}
	return &XSplitTree{xs: uniq}
}

// SplitNode returns the identifier of the highest tree node whose split line
// straddles [x0, x1] and the split coordinate, or ok=false when the interval
// fits inside a leaf (covers at most one distinct x). Node identifiers are
// the (lo, hi) index range of the node in the sorted x array, encoded as a
// single int; splits are at the median x of the node's range (left region:
// x <= split).
func (t *XSplitTree) SplitNode(x0, x1 float64) (nodeID int, split float64, ok bool) {
	lo, hi := 0, len(t.xs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		s := t.xs[mid] // left region: xs[lo..mid], right: xs[mid+1..hi]
		switch {
		case x1 <= s:
			hi = mid
		case x0 > s:
			lo = mid + 1
		default:
			// Straddle: x0 <= s < x1.
			return lo*len(t.xs) + hi, s, true
		}
	}
	return 0, 0, false
}

// Levels returns the tree depth, O(log |S|).
func (t *XSplitTree) Levels() int {
	d := 0
	for n := len(t.xs); n > 1; n = (n + 1) / 2 {
		d++
	}
	return d
}

// Piece is one canonical piece: a subset of the sample realized by a clipped
// shape, tagged by the node that produced it (node -1 for whole-shape
// pieces). Elems are global point indices, sorted.
type Piece struct {
	Node  int
	Elems []int32
}

// CanonicalStore deduplicates pieces by (node, element set). It reports the
// number of distinct pieces — the quantity Lemma 4.4 bounds by Õ(n) — and
// the total words they occupy.
type CanonicalStore struct {
	index  map[string]int
	pieces []Piece
	words  int64
}

// NewCanonicalStore returns an empty store.
func NewCanonicalStore() *CanonicalStore {
	return &CanonicalStore{index: make(map[string]int)}
}

func pieceKey(node int, elems []int32) string {
	buf := make([]byte, 8+4*len(elems))
	binary.LittleEndian.PutUint64(buf, uint64(int64(node)))
	for i, e := range elems {
		binary.LittleEndian.PutUint32(buf[8+4*i:], uint32(e))
	}
	return string(buf)
}

// Add inserts a piece if it is new and returns its index and whether it was
// inserted. Empty pieces are ignored (index -1).
func (cs *CanonicalStore) Add(node int, elems []int32) (idx int, added bool) {
	if len(elems) == 0 {
		return -1, false
	}
	key := pieceKey(node, elems)
	if i, ok := cs.index[key]; ok {
		return i, false
	}
	cp := make([]int32, len(elems))
	copy(cp, elems)
	cs.pieces = append(cs.pieces, Piece{Node: node, Elems: cp})
	cs.index[key] = len(cs.pieces) - 1
	cs.words += int64(len(cp)+1)/2 + 1
	return len(cs.pieces) - 1, true
}

// Pieces returns the distinct pieces stored so far.
func (cs *CanonicalStore) Pieces() []Piece { return cs.pieces }

// Count returns the number of distinct pieces.
func (cs *CanonicalStore) Count() int { return len(cs.pieces) }

// Words returns the space the stored pieces occupy, in words.
func (cs *CanonicalStore) Words() int64 { return cs.words }

// CanonicalPieces decomposes one shape's projection onto the sampled points
// into canonical pieces and adds them to the store. proj lists the global
// indices of sampled points contained in the shape (sorted); pts is the
// global point array. Rectangles split into two x-anchored pieces at the
// tree's topmost straddled node (Lemma 4.2); disks and triangles contribute
// their whole projection (dedup-by-projection, Lemma 4.4 / DESIGN.md §3).
// It returns how many pieces were newly added.
func CanonicalPieces(cs *CanonicalStore, tree *XSplitTree, s Shape, proj []int32, pts []Point) int {
	if len(proj) == 0 {
		return 0
	}
	added := 0
	if r, isRect := s.(Rect); isRect && tree != nil {
		if node, split, ok := tree.SplitNode(r.X0, r.X1); ok {
			var left, right []int32
			for _, pi := range proj {
				if pts[pi].X <= split {
					left = append(left, pi)
				} else {
					right = append(right, pi)
				}
			}
			if _, a := cs.Add(node, left); a {
				added++
			}
			// Right pieces anchor on the same node from the other side;
			// offset the node id to keep the two sides distinct.
			if _, a := cs.Add(-node-2, right); a {
				added++
			}
			return added
		}
	}
	if _, a := cs.Add(-1, proj); a {
		added++
	}
	return added
}

// SubsetOfSorted reports whether a (sorted) is a subset of b (sorted).
func SubsetOfSorted(a, b []int32) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}
