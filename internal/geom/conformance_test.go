package geom

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/engine"
)

// Golden outputs of the pre-engine (seed-state) direct-scan AlgGeomSC,
// captured before the migration onto engine.RunOver. The migration must be
// invisible: byte-identical covers, exact pass budgets, exact space charges,
// and identical diagnostics — at every worker count, segmented knob set or
// not (the shape source has no segmented path; the option must be inert).
var (
	// PlantedDisks(400, 1600, 16, seed 4), Delta 0.25, Seed 1.
	goldenDisksCover = []int{4, 5, 8, 17, 27, 49, 92, 118, 161, 459,
		16, 58, 82, 139, 194, 252, 368, 544, 614,
		11, 20, 21, 391, 891, 1212, 1457,
		26, 69, 81, 95, 129, 146, 193, 329, 1, 61, 64, 197}
	goldenDisksPasses     = 13
	goldenDisksSpace      = int64(2301)
	goldenDisksBestK      = 8
	goldenDisksPiecesPeak = 197
	goldenDisksRawSeen    = 8040

	// Figure12(64) — the adversarial stream — Delta 0.25, Seed 6.
	goldenFig12CoverLen   = 32
	goldenFig12Passes     = 13
	goldenFig12Space      = int64(541)
	goldenFig12BestK      = 32
	goldenFig12PiecesPeak = 38
	goldenFig12RawSeen    = 5235
)

func geomEngineSweep() []engine.Options {
	var out []engine.Options
	for _, w := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		for _, ds := range []bool{false, true} {
			out = append(out, engine.Options{Workers: w, DisableSegmented: ds})
		}
	}
	return out
}

// AlgGeomSC on the planted-disks instance must reproduce the golden
// seed-state result exactly at every engine setting: the parallel guesses
// own disjoint state, so observer fan-out is invisible in covers, passes,
// space, and the canonical-representation diagnostics.
func TestAlgGeomSCEngineConformance(t *testing.T) {
	in, _, err := PlantedDisks(400, 1600, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, engOpts := range geomEngineSweep() {
		label := fmt.Sprintf("workers=%d/noseg=%v", engOpts.Workers, engOpts.DisableSegmented)
		repo := NewShapeRepo(in)
		repo.Precompute()
		res, err := AlgGeomSC(repo, GeomOptions{Delta: 0.25, Seed: 1, Engine: engOpts})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.Passes != goldenDisksPasses {
			t.Errorf("%s: passes = %d, want exactly %d", label, res.Passes, goldenDisksPasses)
		}
		if res.SpaceWords != goldenDisksSpace {
			t.Errorf("%s: space = %d, want %d", label, res.SpaceWords, goldenDisksSpace)
		}
		if res.BestK != goldenDisksBestK {
			t.Errorf("%s: bestK = %d, want %d", label, res.BestK, goldenDisksBestK)
		}
		if res.CanonicalPiecesPeak != goldenDisksPiecesPeak {
			t.Errorf("%s: piecesPeak = %d, want %d", label, res.CanonicalPiecesPeak, goldenDisksPiecesPeak)
		}
		if res.RawProjectionsSeen != goldenDisksRawSeen {
			t.Errorf("%s: rawSeen = %d, want %d", label, res.RawProjectionsSeen, goldenDisksRawSeen)
		}
		if len(res.Cover) != len(goldenDisksCover) {
			t.Fatalf("%s: cover size %d, want %d", label, len(res.Cover), len(goldenDisksCover))
		}
		for i, id := range goldenDisksCover {
			if res.Cover[i] != id {
				t.Fatalf("%s: cover[%d] = %d, want %d", label, i, res.Cover[i], id)
			}
		}
	}
}

// Same invariance on the adversarial Figure 1.2 stream, whose canonical
// store takes the pass-2 hot path hard (every rectangle is sample-shallow).
func TestAlgGeomSCFigure12EngineConformance(t *testing.T) {
	in, err := Figure12(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, engOpts := range geomEngineSweep() {
		label := fmt.Sprintf("workers=%d/noseg=%v", engOpts.Workers, engOpts.DisableSegmented)
		repo := NewShapeRepo(in)
		repo.Precompute()
		res, err := AlgGeomSC(repo, GeomOptions{Delta: 0.25, Seed: 6, Engine: engOpts})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !in.IsCover(res.Cover) {
			t.Fatalf("%s: cover invalid", label)
		}
		if len(res.Cover) != goldenFig12CoverLen || res.Passes != goldenFig12Passes ||
			res.SpaceWords != goldenFig12Space || res.BestK != goldenFig12BestK ||
			res.CanonicalPiecesPeak != goldenFig12PiecesPeak || res.RawProjectionsSeen != goldenFig12RawSeen {
			t.Fatalf("%s: (cover=%d passes=%d space=%d bestK=%d pieces=%d raw=%d), want (%d %d %d %d %d %d)",
				label, len(res.Cover), res.Passes, res.SpaceWords, res.BestK,
				res.CanonicalPiecesPeak, res.RawProjectionsSeen,
				goldenFig12CoverLen, goldenFig12Passes, goldenFig12Space, goldenFig12BestK,
				goldenFig12PiecesPeak, goldenFig12RawSeen)
		}
	}
}
