package geom

import (
	"errors"
	"testing"

	"repro/internal/engine"
)

// FuzzAlgGeomSCStreamFailure fuzzes the shape-stream error surface: a
// failure injected at an arbitrary (pass, offset) — loud (reader reports
// through Err) or silent (the stream just ends short) — must either leave
// the solve untouched (the injector never fired because the failing pass
// was past the end, or the offset was past m) or abort it with an error
// wrapping engine.ErrPassFailed. Under no input may AlgGeomSC return a
// cover from a partial shape stream, and a fired silent truncation must be
// indistinguishable, at the API, from a loud one. This is the geometric
// analogue of internal/scdisk's flaky-ReaderAt fuzzing, run as a 15 s CI
// smoke stage like the SCIX/SCB1 parsers.
func FuzzAlgGeomSCStreamFailure(f *testing.F) {
	f.Add(uint8(1), uint16(0), false)
	f.Add(uint8(1), uint16(37), true)
	f.Add(uint8(3), uint16(119), false)
	f.Add(uint8(13), uint16(59), true)
	f.Add(uint8(200), uint16(400), false) // never fires: clean solve

	in, _, err := PlantedDisks(80, 160, 4, 4)
	if err != nil {
		f.Fatal(err)
	}
	// The clean reference: deterministic given the seed, so every non-fired
	// fuzz case must reproduce it exactly.
	cleanRepo := NewShapeRepo(in)
	cleanRepo.Precompute()
	clean, err := AlgGeomSC(cleanRepo, GeomOptions{Delta: 0.25, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, failOnPass uint8, failAfter uint16, silent bool) {
		repo := NewShapeRepo(in)
		repo.Precompute()
		flaky := &flakyShapeRepo{
			ShapeStream: repo,
			failOnPass:  int(failOnPass),
			failAfter:   int(failAfter),
			silent:      silent,
		}
		res, err := AlgGeomSC(flaky, GeomOptions{Delta: 0.25, Seed: 3,
			Engine: engine.Options{Workers: 1 + int(failAfter)%3}})
		if flaky.fired {
			if !errors.Is(err, engine.ErrPassFailed) {
				t.Fatalf("failOnPass=%d failAfter=%d silent=%v: err = %v, want ErrPassFailed",
					failOnPass, failAfter, silent, err)
			}
			if res.Valid || len(res.Cover) != 0 {
				t.Fatalf("failOnPass=%d failAfter=%d silent=%v: failed run reported a cover (size %d)",
					failOnPass, failAfter, silent, len(res.Cover))
			}
			return
		}
		// Injector never fired: the run must be byte-identical to the clean
		// reference.
		if err != nil {
			t.Fatalf("failOnPass=%d failAfter=%d silent=%v: unfired injector changed the run: %v",
				failOnPass, failAfter, silent, err)
		}
		if len(res.Cover) != len(clean.Cover) || res.Passes != clean.Passes || res.SpaceWords != clean.SpaceWords {
			t.Fatalf("unfired injector diverged: (cover=%d passes=%d space=%d), want (%d %d %d)",
				len(res.Cover), res.Passes, res.SpaceWords, len(clean.Cover), clean.Passes, clean.SpaceWords)
		}
		for i := range clean.Cover {
			if res.Cover[i] != clean.Cover[i] {
				t.Fatalf("unfired injector diverged at cover[%d]", i)
			}
		}
	})
}
