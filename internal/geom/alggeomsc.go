package geom

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/offline"
	"repro/internal/sample"
	"repro/internal/setcover"
	"repro/internal/stream"
)

// GeomAlgorithmName identifies algGeomSC in Stats reports.
const GeomAlgorithmName = "algGeomSC"

// ErrGeomNoCover is returned when no guess completed a cover.
var ErrGeomNoCover = errors.New("geom: no guess produced a complete cover")

// GeomOptions configures AlgGeomSC (Figure 4.1).
type GeomOptions struct {
	// Delta is the paper's δ; Theorem 4.6 sets δ = 1/4 (and requires
	// δ <= 1/4 for the near-linear space analysis). Default 1/4.
	Delta float64
	// Offline is algOfflineSC over the canonical pieces. Default greedy.
	Offline offline.Solver
	// Seed drives sampling.
	Seed int64
	// SampleScale multiplies the practical sample size
	// scale·k·(n/k)^δ (the paper's c·ρ·k·(n/k)^δ·log m·log n with the
	// polylog and ρ factors folded into the constant). Default 1.
	SampleScale float64
	// HeavyW multiplies the canonical-representation shallowness threshold
	// w = HeavyW·|S|/k (Lemma 4.5 uses 3). Default 3.
	HeavyW float64
	// KMin/KMax restrict the parallel guesses (powers of two); zero values
	// mean the full range {1, ..., 2^ceil(log n)}.
	KMin, KMax int
	// DisableCanonical is an ablation switch (experiment E14): rectangles
	// are stored as whole projections instead of being split at the
	// x-interval tree (Lemma 4.2). On adversarial streams like Figure 1.2
	// the distinct-projection count — and hence the space — blows up toward
	// m while the canonical family stays Õ(n).
	DisableCanonical bool
	// Engine configures the shared pass executor (internal/engine) that
	// fans every physical shape pass out to the parallel guesses, exactly
	// as it does for the set-system algorithms. Results, pass counts, and
	// space accounting are identical for every setting — each guess owns
	// disjoint state and sees the shape stream in order — so this is
	// purely a wall-clock knob.
	Engine engine.Options
}

// GeomResult extends Stats with geometric diagnostics.
type GeomResult struct {
	setcover.Stats
	// BestK is the winning guess.
	BestK int
	// CanonicalPiecesPeak is the largest number of distinct canonical pieces
	// stored in any single iteration (the Õ(n) quantity of Lemma 4.4).
	CanonicalPiecesPeak int
	// RawProjectionsSeen counts shapes with non-empty sample projections
	// processed by compCanonicalRep across the run — compare with
	// CanonicalPiecesPeak to see the dedup factor (Figure 1.2's point).
	RawProjectionsSeen int
}

// failPass closes out a GeomResult whose physical shape pass failed
// mid-stream (a flaky or truncated geometric instance): every guess saw only
// a prefix of the shapes, so no cover can be reported — the run fails loudly
// with the resources it consumed, never with a plausible-looking partial
// answer. The error chain carries engine.ErrPassFailed for service-layer
// classification.
func (res GeomResult) failPass(repo ShapeStream, tracker *stream.Tracker, err error) (GeomResult, error) {
	res.Passes = repo.Passes()
	res.SpaceWords = tracker.Peak()
	return res, fmt.Errorf("geom: %w", err)
}

type geomRun struct {
	k    int
	left *bitset.Bitset // L, over points
	sol  []int
	done bool
}

// geomIterState is one guess's per-iteration state: the sampled points, the
// shallowness threshold, and the canonical piece store the second pass fills.
type geomIterState struct {
	s       *bitset.Bitset
	sLen    int
	w       float64
	store   *CanonicalStore
	tree    *XSplitTree
	words   int64
	solS    []Piece
	picked  map[int]bool
	rawSeen int // per-guess share of GeomResult.RawProjectionsSeen
}

// AlgGeomSC implements Figure 4.1: a streaming algorithm for Points-Shapes
// Set Cover using Õ(n) space and 3/δ + 1 passes. Per iteration and guess k:
//
//	pass 1: pick every shape covering ≥ n/k points of L;
//	sample S ⊆ L of size ~k·(n/k)^δ; pass 2: compute the canonical
//	representation of (S, F) for w-shallow shapes and cover S offline from
//	the canonical pieces; pass 3: replace each chosen piece by a streamed
//	shape whose projection contains it.
//
// A final pass covers the ≤ k leftovers with one arbitrary set each.
//
// Every pass runs on the shared pass engine (engine.RunOver over the shape
// stream): one RunOver = one counted pass shared by all live guesses
// (Lemma 2.1's accounting, the same sharing the set-system algorithm gets
// from engine.Run), each guess its own observer over disjoint state. A pass
// that cannot be fully drained — a reader error, or a stream that silently
// ends short of NumShapes — aborts the solve with an error wrapping
// engine.ErrPassFailed.
func AlgGeomSC(repo ShapeStream, opts GeomOptions) (GeomResult, error) {
	n := repo.NumPoints()
	if opts.Delta == 0 {
		opts.Delta = 0.25
	}
	if opts.Delta < 0 || opts.Delta > 1 {
		return GeomResult{}, fmt.Errorf("geom: delta %v out of (0,1]", opts.Delta)
	}
	if opts.Offline == nil {
		opts.Offline = offline.Greedy{}
	}
	if opts.SampleScale <= 0 {
		opts.SampleScale = 1
	}
	if opts.HeavyW <= 0 {
		opts.HeavyW = 3
	}
	res := GeomResult{Stats: setcover.Stats{Algorithm: GeomAlgorithmName, Extra: opts.Delta}}
	if n == 0 {
		res.Valid = true
		return res, nil
	}
	tracker := stream.NewTracker()
	// The model stores the points in memory: 2 coordinates per point.
	tracker.Grow(2 * int64(n))
	rng := rand.New(rand.NewSource(opts.Seed))
	pts := repo.Points()

	runs := makeGeomRuns(n, opts, tracker)
	eng := engine.New(opts.Engine)
	src := shapeSource{repo: repo}
	iterations := int(math.Ceil(1 / opts.Delta))

	for iter := 0; iter < iterations; iter++ {
		if geomAllDone(runs) {
			break
		}

		// Pass 1: heavy shapes — |r∩L| >= n/k enters sol immediately.
		if err := engine.RunOver(eng, src, liveGeomObservers(runs, func(g *geomRun) engine.ObserverOf[StreamShape] {
			return &heavyShapeObserver{g: g, n: n, tracker: tracker}
		})...); err != nil {
			return res.failPass(repo, tracker, err)
		}
		for _, g := range runs {
			if !g.done && g.left.Empty() {
				g.done = true
			}
		}
		if geomAllDone(runs) {
			break
		}

		// Sample per guess, then pass 2: canonical representation of (S, F).
		states := make(map[*geomRun]*geomIterState)
		for _, g := range runs {
			if g.done {
				continue
			}
			size := int(math.Ceil(opts.SampleScale * float64(g.k) *
				math.Pow(float64(n)/float64(g.k), opts.Delta)))
			if size < 1 {
				size = 1
			}
			st := &geomIterState{store: NewCanonicalStore()}
			st.s = sample.UniformFromBitset(rng, g.left, size)
			st.sLen = st.s.Count()
			st.w = opts.HeavyW * float64(st.sLen) / float64(g.k)
			if st.w < 1 {
				st.w = 1
			}
			if !opts.DisableCanonical {
				var spts []Point
				st.s.ForEach(func(i int) bool { spts = append(spts, pts[i]); return true })
				st.tree = NewXSplitTree(spts)
			}
			st.words = stream.WordsForBitset(n) // the sample bitset
			tracker.Grow(st.words)
			states[g] = st
		}

		if err := engine.RunOver(eng, src, liveGeomObservers(runs, func(g *geomRun) engine.ObserverOf[StreamShape] {
			return &canonicalObserver{st: states[g], pts: pts, tracker: tracker}
		})...); err != nil {
			return res.failPass(repo, tracker, err)
		}
		for _, g := range runs {
			if g.done {
				continue
			}
			st := states[g]
			res.RawProjectionsSeen += st.rawSeen
			if st.store.Count() > res.CanonicalPiecesPeak {
				res.CanonicalPiecesPeak = st.store.Count()
			}
		}

		// Offline cover of S from the canonical pieces (no pass).
		for _, g := range runs {
			if g.done {
				continue
			}
			st := states[g]
			solS, ok := solveCanonical(st.s, st.store, opts.Offline)
			if !ok {
				// Some sampled point lies in no shallow piece: this guess's
				// threshold was too aggressive. The guess continues — the
				// point stays in L for later iterations or the final pass.
				solS = nil
			}
			st.solS = solS
			st.picked = make(map[int]bool)
		}

		// Pass 3: replace chosen pieces by stream shapes covering them.
		if err := engine.RunOver(eng, src, liveGeomObservers(runs, func(g *geomRun) engine.ObserverOf[StreamShape] {
			return &replacePieceObserver{g: g, st: states[g], tracker: tracker}
		})...); err != nil {
			return res.failPass(repo, tracker, err)
		}

		for _, g := range runs {
			if g.done {
				continue
			}
			st := states[g]
			tracker.Shrink(st.words)
			if g.left.Empty() {
				g.done = true
			}
		}
	}

	// Final pass: one arbitrary shape per leftover point (≤ k of them when
	// the guess is right).
	if !geomAllDone(runs) {
		if err := engine.RunOver(eng, src, liveGeomObservers(runs, func(g *geomRun) engine.ObserverOf[StreamShape] {
			return &patchShapeObserver{g: g, tracker: tracker}
		})...); err != nil {
			return res.failPass(repo, tracker, err)
		}
	}

	best := -1
	for i, g := range runs {
		if g.done && (best < 0 || len(g.sol) < len(runs[best].sol)) {
			best = i
		}
	}
	res.Passes = repo.Passes()
	res.SpaceWords = tracker.Peak()
	if best < 0 {
		return res, ErrGeomNoCover
	}
	res.Cover = append([]int(nil), runs[best].sol...)
	res.Valid = true
	res.BestK = runs[best].k
	return res, nil
}

// liveGeomObservers wraps every guess that is still running as an engine
// observer, in run order (the engine's per-observer delivery keeps each
// guess's view sequential; disjoint per-guess state keeps results identical
// at every worker count). done only flips between passes — except in the
// final patch pass, whose observer re-checks it as it flips mid-pass.
func liveGeomObservers(runs []*geomRun, mk func(*geomRun) engine.ObserverOf[StreamShape]) []engine.ObserverOf[StreamShape] {
	obs := make([]engine.ObserverOf[StreamShape], 0, len(runs))
	for _, g := range runs {
		if !g.done {
			obs = append(obs, mk(g))
		}
	}
	return obs
}

// heavyShapeObserver runs pass 1 of an iteration for one guess: any shape
// covering at least n/k of the guess's leftover points is taken immediately.
type heavyShapeObserver struct {
	g       *geomRun
	n       int
	tracker *stream.Tracker
}

func (o *heavyShapeObserver) Observe(batch []StreamShape) {
	g := o.g
	for _, sh := range batch {
		cnt := g.left.IntersectionWithSlice(sh.Contained)
		if cnt > 0 && float64(cnt) >= float64(o.n)/float64(g.k) {
			g.sol = append(g.sol, sh.ID)
			o.tracker.Grow(1)
			g.left.SubtractSlice(sh.Contained)
		}
	}
}

// canonicalObserver runs pass 2 for one guess: every w-shallow shape with a
// non-empty sample projection contributes its canonical pieces (Lemma 4.2)
// to the guess's store.
type canonicalObserver struct {
	st      *geomIterState
	pts     []Point
	tracker *stream.Tracker
}

func (o *canonicalObserver) Observe(batch []StreamShape) {
	st := o.st
	for _, sh := range batch {
		proj := projectSorted(sh.Contained, st.s)
		if len(proj) == 0 || float64(len(proj)) > st.w {
			continue // empty or too heavy for the canonical family
		}
		st.rawSeen++
		before := st.store.Words()
		CanonicalPieces(st.store, st.tree, sh.Shape, proj, o.pts)
		grown := st.store.Words() - before
		if grown > 0 {
			st.words += grown
			o.tracker.Grow(grown)
		}
	}
}

// replacePieceObserver runs pass 3 for one guess: each chosen canonical
// piece is replaced by the first streamed shape whose sample projection
// contains it.
type replacePieceObserver struct {
	g       *geomRun
	st      *geomIterState
	tracker *stream.Tracker
}

func (o *replacePieceObserver) Observe(batch []StreamShape) {
	g, st := o.g, o.st
	for _, sh := range batch {
		if len(st.solS) == 0 {
			return
		}
		proj := projectSorted(sh.Contained, st.s)
		if len(proj) == 0 {
			continue
		}
		matched := false
		rest := st.solS[:0]
		for _, piece := range st.solS {
			if SubsetOfSorted(piece.Elems, proj) {
				matched = true
			} else {
				rest = append(rest, piece)
			}
		}
		st.solS = rest
		if matched && !st.picked[sh.ID] {
			st.picked[sh.ID] = true
			g.sol = append(g.sol, sh.ID)
			o.tracker.Grow(1)
			g.left.SubtractSlice(sh.Contained)
		}
	}
}

// patchShapeObserver runs the final pass for one guess: cover each remaining
// point with an arbitrary shape containing it.
type patchShapeObserver struct {
	g       *geomRun
	tracker *stream.Tracker
}

func (o *patchShapeObserver) Observe(batch []StreamShape) {
	g := o.g
	for _, sh := range batch {
		if g.done {
			return
		}
		if g.left.IntersectionWithSlice(sh.Contained) > 0 {
			g.sol = append(g.sol, sh.ID)
			o.tracker.Grow(1)
			g.left.SubtractSlice(sh.Contained)
			if g.left.Empty() {
				g.done = true
			}
		}
	}
}

func makeGeomRuns(n int, opts GeomOptions, tracker *stream.Tracker) []*geomRun {
	kMin, kMax := opts.KMin, opts.KMax
	if kMin <= 0 {
		kMin = 1
	}
	if kMax <= 0 {
		kMax = 1 << uint(math.Ceil(math.Log2(float64(n))))
		if kMax < 1 {
			kMax = 1
		}
	}
	var runs []*geomRun
	for k := 1; k <= kMax; k *= 2 {
		if k < kMin {
			continue
		}
		g := &geomRun{k: k, left: bitset.New(n)}
		g.left.Fill()
		tracker.Grow(stream.WordsForBitset(n))
		runs = append(runs, g)
	}
	return runs
}

func geomAllDone(runs []*geomRun) bool {
	for _, g := range runs {
		if !g.done {
			return false
		}
	}
	return true
}

// projectSorted returns the members of all (sorted global indices) that lie
// in the sample bitset.
func projectSorted(all []int32, s *bitset.Bitset) []int32 {
	var out []int32
	for _, e := range all {
		if s.Test(int(e)) {
			out = append(out, e)
		}
	}
	return out
}

// solveCanonical covers the sampled points from the canonical pieces with
// the offline solver, returning the chosen pieces. ok is false if some
// sampled point is in no piece.
func solveCanonical(s *bitset.Bitset, store *CanonicalStore, solver offline.Solver) ([]Piece, bool) {
	newIdx := make(map[int32]setcover.Elem)
	next := setcover.Elem(0)
	s.ForEach(func(i int) bool {
		newIdx[int32(i)] = next
		next++
		return true
	})
	sub := &setcover.Instance{N: int(next)}
	pieces := store.Pieces()
	for _, p := range pieces {
		elems := make([]setcover.Elem, 0, len(p.Elems))
		for _, e := range p.Elems {
			elems = append(elems, newIdx[e])
		}
		sub.Sets = append(sub.Sets, setcover.Set{ID: len(sub.Sets), Elems: elems})
	}
	sub.Normalize()
	ids, err := solver.Solve(sub)
	if err != nil {
		return nil, false
	}
	out := make([]Piece, 0, len(ids))
	for _, id := range ids {
		out = append(out, pieces[id])
	}
	return out, true
}
