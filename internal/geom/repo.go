package geom

import (
	"sync/atomic"

	"repro/internal/setcover"
)

// Instance is a geometric SetCover input: n points (the elements, stored in
// memory per the model) and m shapes (the sets, streamed).
type Instance struct {
	Points []Point
	Shapes []Shape
}

// N returns the number of points.
func (in *Instance) N() int { return len(in.Points) }

// M returns the number of shapes.
func (in *Instance) M() int { return len(in.Shapes) }

// ToSetCover materializes the abstract set system (used for ground truth and
// validation only — the streaming algorithm never does this).
func (in *Instance) ToSetCover() *setcover.Instance {
	out := &setcover.Instance{N: len(in.Points)}
	for _, s := range in.Shapes {
		out.Sets = append(out.Sets, setcover.Set{Elems: ContainedPoints(s, in.Points, nil)})
	}
	out.Normalize()
	return out
}

// IsCover reports whether the shapes with the given stream IDs cover every
// point.
func (in *Instance) IsCover(ids []int) bool {
	covered := make([]bool, len(in.Points))
	for _, id := range ids {
		if id < 0 || id >= len(in.Shapes) {
			continue
		}
		s := in.Shapes[id]
		for i, p := range in.Points {
			if !covered[i] && s.Contains(p) {
				covered[i] = true
			}
		}
	}
	for _, c := range covered {
		if !c {
			return false
		}
	}
	return true
}

// ShapeReader yields the shapes of one pass with their stream IDs. A reader
// whose pass can fail mid-stream (truncated or corrupt geometric storage)
// additionally implements stream.ErrorReader (Err() error); the pass engine
// probes it after draining, exactly as it does for set readers, and turns a
// non-nil result into a failed pass.
type ShapeReader interface {
	Next() (s Shape, id int, ok bool)
}

// ShapeStream is the capability AlgGeomSC needs from a shape repository: a
// pass-counted stream of shapes plus the model's in-memory point set. It is
// an interface (rather than the concrete ShapeRepo) so tests can wrap the
// stream with failure injectors — a flaky or truncating ShapeReader must
// fail the solve loudly, never yield a cover of a partial stream.
type ShapeStream interface {
	// NumPoints returns n (the points are stored in memory per the model).
	NumPoints() int
	// NumShapes returns m, the exact length of one full pass.
	NumShapes() int
	// Points exposes the in-memory point set.
	Points() []Point
	// Contained returns the sorted global indices of the points contained
	// in shape id.
	Contained(id int) []int32
	// Begin starts (and counts) a new pass over the shapes.
	Begin() ShapeReader
	// Passes returns the number of passes started so far.
	Passes() int
}

// ShapeRepo is a pass-counted, read-only stream of shapes, the geometric
// analogue of stream.Repository and the standard ShapeStream implementation.
type ShapeRepo struct {
	inst   *Instance
	passes atomic.Int64

	// contained caches r∩U per shape. This is a simulator-speed cache only:
	// in the model, evaluating which stored points fall in a streamed shape
	// costs time, not algorithm memory, so no tracker words are charged.
	contained [][]int32
}

// NewShapeRepo wraps a geometric instance as a shape stream.
func NewShapeRepo(in *Instance) *ShapeRepo { return &ShapeRepo{inst: in} }

// NumPoints returns n.
func (r *ShapeRepo) NumPoints() int { return len(r.inst.Points) }

// NumShapes returns m.
func (r *ShapeRepo) NumShapes() int { return len(r.inst.Shapes) }

// Points exposes the in-memory point set (granted by the model).
func (r *ShapeRepo) Points() []Point { return r.inst.Points }

// Passes returns the number of passes started.
func (r *ShapeRepo) Passes() int { return int(r.passes.Load()) }

// ResetPasses zeroes the pass counter.
func (r *ShapeRepo) ResetPasses() { r.passes.Store(0) }

// Instance exposes the backing instance for verification code only.
func (r *ShapeRepo) Instance() *Instance { return r.inst }

// Precompute evaluates and caches r∩U for every shape, trading simulator
// memory for speed. Safe to call more than once.
func (r *ShapeRepo) Precompute() {
	if r.contained != nil {
		return
	}
	r.contained = make([][]int32, len(r.inst.Shapes))
	for i, s := range r.inst.Shapes {
		r.contained[i] = ContainedPoints(s, r.inst.Points, nil)
	}
}

// Contained returns the sorted global indices of points contained in shape
// id, computing them on the fly if Precompute was not called.
func (r *ShapeRepo) Contained(id int) []int32 {
	if r.contained != nil {
		return r.contained[id]
	}
	return ContainedPoints(r.inst.Shapes[id], r.inst.Points, nil)
}

// Begin starts a new pass.
func (r *ShapeRepo) Begin() ShapeReader {
	r.passes.Add(1)
	return &shapeReader{shapes: r.inst.Shapes}
}

type shapeReader struct {
	shapes []Shape
	pos    int
}

func (it *shapeReader) Next() (Shape, int, bool) {
	if it.pos >= len(it.shapes) {
		return nil, 0, false
	}
	s := it.shapes[it.pos]
	id := it.pos
	it.pos++
	return s, id, true
}
