// Package geom implements the geometric SetCover setting of Section 4:
// elements are points in the plane, sets are disks, axis-parallel rectangles,
// or α-fat triangles streamed from a read-only repository, and the goal is a
// cover using Õ(n) space in O(1) passes (Theorem 4.6).
//
// The space win comes from canonical representations (Definition 4.1): a
// shape containing few sample points is replaced by O(1) canonical pieces
// drawn from a near-linear universe of pieces, so storing the *distinct*
// pieces encountered costs Õ(n) even when m is quadratic (Figure 1.2 shows
// why storing raw projections cannot work).
package geom

import (
	"fmt"
	"math"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Shape is a geometric range with O(1) description. All shapes are closed
// (boundary points are contained).
type Shape interface {
	// Contains reports whether p lies in the shape.
	Contains(p Point) bool
	// Kind returns "disk", "rect", or "triangle".
	Kind() string
}

// Disk is a closed disk.
type Disk struct {
	C Point
	R float64
}

// Contains implements Shape.
func (d Disk) Contains(p Point) bool {
	dx, dy := p.X-d.C.X, p.Y-d.C.Y
	return dx*dx+dy*dy <= d.R*d.R+1e-12
}

// Kind implements Shape.
func (Disk) Kind() string { return "disk" }

// String renders the disk for debugging.
func (d Disk) String() string { return fmt.Sprintf("disk(%.3g,%.3g;r=%.3g)", d.C.X, d.C.Y, d.R) }

// Rect is a closed axis-parallel rectangle [X0,X1]×[Y0,Y1].
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Contains implements Shape.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// Kind implements Shape.
func (Rect) Kind() string { return "rect" }

// String renders the rectangle for debugging.
func (r Rect) String() string {
	return fmt.Sprintf("rect[%.3g,%.3g]x[%.3g,%.3g]", r.X0, r.X1, r.Y0, r.Y1)
}

// Valid reports whether the rectangle is non-degenerate (X0<=X1, Y0<=Y1).
func (r Rect) Valid() bool { return r.X0 <= r.X1 && r.Y0 <= r.Y1 }

// Triangle is a closed triangle with vertices A, B, C.
type Triangle struct {
	A, B, C Point
}

// Contains implements Shape using sign-consistent edge tests (works for
// either vertex orientation; boundary counts as inside).
func (t Triangle) Contains(p Point) bool {
	d1 := cross(t.A, t.B, p)
	d2 := cross(t.B, t.C, p)
	d3 := cross(t.C, t.A, p)
	hasNeg := d1 < -1e-12 || d2 < -1e-12 || d3 < -1e-12
	hasPos := d1 > 1e-12 || d2 > 1e-12 || d3 > 1e-12
	return !(hasNeg && hasPos)
}

// Kind implements Shape.
func (Triangle) Kind() string { return "triangle" }

// String renders the triangle for debugging.
func (t Triangle) String() string {
	return fmt.Sprintf("tri{(%.3g,%.3g),(%.3g,%.3g),(%.3g,%.3g)}",
		t.A.X, t.A.Y, t.B.X, t.B.Y, t.C.X, t.C.Y)
}

// cross returns the z-component of (b-a)×(p-a).
func cross(a, b, p Point) float64 {
	return (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
}

// Area returns the triangle's area.
func (t Triangle) Area() float64 {
	return math.Abs(cross(t.A, t.B, t.C)) / 2
}

// Fatness returns the ratio between the triangle's longest edge and its
// height on that edge (Section 4.1's α). Smaller is fatter; equilateral
// triangles have fatness 2/√3 ≈ 1.155. Degenerate triangles return +Inf.
func (t Triangle) Fatness() float64 {
	area := t.Area()
	if area <= 0 {
		return math.Inf(1)
	}
	longest := math.Max(dist(t.A, t.B), math.Max(dist(t.B, t.C), dist(t.C, t.A)))
	height := 2 * area / longest
	return longest / height
}

// IsFat reports whether the triangle is α-fat (Fatness() <= alpha).
func (t Triangle) IsFat(alpha float64) bool { return t.Fatness() <= alpha }

func dist(a, b Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// ContainedPoints returns the indices of the points contained in the shape.
// The streaming algorithms use it to evaluate r∩L against an in-memory
// point set; the model charges no space for this (the points are stored, per
// Section 1, and the shape description is O(1)).
func ContainedPoints(s Shape, pts []Point, within func(i int) bool) []int32 {
	var out []int32
	for i, p := range pts {
		if (within == nil || within(i)) && s.Contains(p) {
			out = append(out, int32(i))
		}
	}
	return out
}
