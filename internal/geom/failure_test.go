package geom

import (
	"errors"
	"testing"

	"repro/internal/engine"
)

// errShapeBoom is the sentinel failure the flaky shape readers inject.
var errShapeBoom = errors.New("injected shape stream failure")

// flakyShapeRepo wraps a ShapeStream and fails pass number failOnPass (1-
// based) after failAfter shapes. With silent set, the pass just ends early
// with no reported error — the truncation a corrupt geometric instance would
// present if its reader had no failure surface; otherwise the reader reports
// errShapeBoom through the stream.ErrorReader shape. Passes before
// failOnPass run clean, so failures can be injected into any of the
// algorithm's pass kinds (heavy, canonical, replace, final patch).
type flakyShapeRepo struct {
	ShapeStream
	failOnPass int
	failAfter  int
	silent     bool
	begins     int
	fired      bool
}

func (r *flakyShapeRepo) Begin() ShapeReader {
	r.begins++
	inner := r.ShapeStream.Begin()
	if r.begins != r.failOnPass {
		return inner
	}
	return &flakyShapeReader{repo: r, inner: inner, left: r.failAfter}
}

type flakyShapeReader struct {
	repo  *flakyShapeRepo
	inner ShapeReader
	left  int
	err   error
}

func (it *flakyShapeReader) Next() (Shape, int, bool) {
	if it.err != nil {
		return nil, 0, false
	}
	if it.left == 0 {
		// Only a stream that still had shapes is truncated: probe the inner
		// reader, and fire only when an item is actually dropped (a fail
		// offset at or past m is a clean pass, not a failure).
		if _, _, ok := it.inner.Next(); !ok {
			return nil, 0, false
		}
		it.repo.fired = true
		if !it.repo.silent {
			it.err = errShapeBoom
		}
		return nil, 0, false
	}
	it.left--
	return it.inner.Next()
}

// Err implements the optional failure surface (stream.ErrorReader). A
// silent reader never reports — the engine's full-drain check is what has
// to catch it.
func (it *flakyShapeReader) Err() error { return it.err }

// A shape stream that fails mid-pass — loudly or silently, in any of the
// four pass kinds — must abort AlgGeomSC with an error wrapping
// engine.ErrPassFailed and never a valid-looking cover.
func TestFlakyShapeStreamFailsAlgGeomSC(t *testing.T) {
	in, _, err := PlantedDisks(200, 400, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := NewShapeRepo(in)
	base.Precompute()
	// Sanity: the clean run succeeds (pass structure below depends on it).
	clean, err := AlgGeomSC(base, GeomOptions{Delta: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Passes < 4 {
		t.Fatalf("clean run made %d passes; the sweep below wants at least 4", clean.Passes)
	}

	for _, silent := range []bool{false, true} {
		// Sweep the failure across every pass the clean run made: pass 1 is
		// the heavy-shapes scan, 2 the canonical representation, 3 the
		// piece replacement, and the last one the final patch.
		for failOnPass := 1; failOnPass <= clean.Passes; failOnPass++ {
			repo := NewShapeRepo(in)
			repo.Precompute()
			flaky := &flakyShapeRepo{ShapeStream: repo, failOnPass: failOnPass, failAfter: 37, silent: silent}
			res, err := AlgGeomSC(flaky, GeomOptions{Delta: 0.25, Seed: 1})
			if !flaky.fired {
				t.Fatalf("silent=%v failOnPass=%d: injector never fired (begins=%d)", silent, failOnPass, flaky.begins)
			}
			if !errors.Is(err, engine.ErrPassFailed) {
				t.Fatalf("silent=%v failOnPass=%d: err = %v, want ErrPassFailed", silent, failOnPass, err)
			}
			if !silent && !errors.Is(err, errShapeBoom) {
				t.Fatalf("failOnPass=%d: err = %v does not carry the injected cause", failOnPass, err)
			}
			if res.Valid || len(res.Cover) != 0 {
				t.Fatalf("silent=%v failOnPass=%d: failed run still reported a cover (size %d, valid=%v)",
					silent, failOnPass, len(res.Cover), res.Valid)
			}
			if res.Passes != failOnPass {
				t.Fatalf("silent=%v failOnPass=%d: failed run charged %d passes", silent, failOnPass, res.Passes)
			}
		}
	}
}

// A truncated shape stream failing at shape 0 — before anything is read —
// must also fail cleanly, and the failure must surface through the public
// ShapeStream entry point at every worker count.
func TestTruncatedShapeStreamAtEveryWorkerCount(t *testing.T) {
	in, _, err := PlantedDisks(120, 240, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		repo := NewShapeRepo(in)
		repo.Precompute()
		flaky := &flakyShapeRepo{ShapeStream: repo, failOnPass: 1, failAfter: 0, silent: true}
		_, err := AlgGeomSC(flaky, GeomOptions{Delta: 0.25, Seed: 2,
			Engine: engine.Options{Workers: workers}})
		if !errors.Is(err, engine.ErrPassFailed) {
			t.Fatalf("workers=%d: err = %v, want ErrPassFailed", workers, err)
		}
	}
}
