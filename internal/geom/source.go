package geom

import (
	"repro/internal/engine"
	"repro/internal/stream"
)

// source.go adapts a ShapeStream to the pass engine's generic Source
// capability, which is how the geometric algorithm's passes run on the same
// executor as every set-system algorithm: one engine.RunOver = one counted
// shape pass, batched delivery, per-guess observers sharded across workers,
// and the first-class failure contract (a reader error or a silently short
// stream poisons the pass and AlgGeomSC returns an error wrapping
// engine.ErrPassFailed instead of covering a partial stream).

// StreamShape is the element type of a geometric pass: one streamed shape
// with its stream ID and its decoded point containment. Contained is
// computed once per shape per pass in the cursor — the per-pass "decode" of
// the geometric setting (evaluating which stored points fall inside a
// streamed shape costs time, not algorithm memory, so no tracker words are
// charged) — and shared read-only by every observer.
type StreamShape struct {
	ID        int
	Shape     Shape
	Contained []int32
}

// shapeSource implements engine.Source[StreamShape] over a ShapeStream.
type shapeSource struct {
	repo ShapeStream
}

// NumItems returns the exact pass length; the engine uses it to detect
// silently truncated shape streams.
func (s shapeSource) NumItems() int { return s.repo.NumShapes() }

// Begin starts one counted pass (delegating the counting to the repository).
func (s shapeSource) Begin() engine.Cursor[StreamShape] {
	return &shapeCursor{repo: s.repo, it: s.repo.Begin()}
}

// shapeCursor drives one ShapeReader pass, decoding containment per shape.
type shapeCursor struct {
	repo ShapeStream
	it   ShapeReader
}

func (c *shapeCursor) Next() (StreamShape, bool) {
	sh, id, ok := c.it.Next()
	if !ok {
		return StreamShape{}, false
	}
	return StreamShape{ID: id, Shape: sh, Contained: c.repo.Contained(id)}, true
}

// Err forwards the reader's optional mid-pass failure surface to the engine:
// a ShapeReader that implements stream.ErrorReader fails the pass loudly
// through the cursor, exactly like a set reader would.
func (c *shapeCursor) Err() error {
	if er, ok := c.it.(stream.ErrorReader); ok {
		return er.Err()
	}
	return nil
}
