package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestRectUniverseEmptyAndDegenerate(t *testing.T) {
	if cs := RectUniverse(nil, 3); cs.Count() != 0 {
		t.Fatal("empty point set should give empty universe")
	}
	if cs := RectUniverse(RandomPoints(5, 1), 0); cs.Count() != 0 {
		t.Fatal("w=0 should give empty universe")
	}
	// A single point: the universe is that singleton.
	cs := RectUniverse([]Point{{0.5, 0.5}}, 2)
	if cs.Count() != 1 {
		t.Fatalf("single point universe = %d pieces, want 1", cs.Count())
	}
}

// Lemma 4.2's size bound: |F'_total| = O(n·w²·log n).
func TestRectUniverseSizeBound(t *testing.T) {
	for _, n := range []int{32, 64, 128} {
		for _, w := range []int{2, 4} {
			pts := RandomPoints(n, int64(n*10+w))
			cs := RectUniverse(pts, w)
			bound := 6 * n * w * w * (int(math.Log2(float64(n))) + 1)
			if cs.Count() > bound {
				t.Fatalf("n=%d w=%d: universe %d exceeds O(n·w²·log n) budget %d",
					n, w, cs.Count(), bound)
			}
			if cs.Count() == 0 {
				t.Fatalf("n=%d w=%d: empty universe", n, w)
			}
		}
	}
}

// The lemma's covering property, via the lazy splitter: every piece that
// CanonicalPieces derives from a w-shallow rectangle must already be a
// member of the precomputed universe (same node, same point set).
func TestRectUniverseContainsLazyPieces(t *testing.T) {
	const n, w = 60, 4
	pts := RandomPoints(n, 9)
	tree := NewXSplitTree(pts)
	universe := RectUniverse(pts, w)
	members := make(map[string]bool, universe.Count())
	for _, p := range universe.Pieces() {
		members[pieceKey(p.Node, p.Elems)] = true
	}

	rng := rand.New(rand.NewSource(10))
	tested := 0
	for trial := 0; trial < 4000 && tested < 300; trial++ {
		wd, ht := 0.05+0.3*rng.Float64(), 0.05+0.3*rng.Float64()
		x, y := rng.Float64()*(1-wd), rng.Float64()*(1-ht)
		r := Rect{X0: x, X1: x + wd, Y0: y, Y1: y + ht}
		proj := ContainedPoints(r, pts, nil)
		if len(proj) == 0 || len(proj) > w {
			continue
		}
		tested++
		cs := NewCanonicalStore()
		CanonicalPieces(cs, tree, r, proj, pts)
		if cs.Count() < 1 || cs.Count() > 2 {
			t.Fatalf("rect %v produced %d pieces, want 1 or 2", r, cs.Count())
		}
		for _, p := range cs.Pieces() {
			if !members[pieceKey(p.Node, p.Elems)] {
				t.Fatalf("lazy piece (node %d, elems %v) of rect %v not in the precomputed universe",
					p.Node, p.Elems, r)
			}
		}
	}
	if tested < 100 {
		t.Fatalf("only %d shallow rectangles tested; generator parameters off", tested)
	}
}

// The universe on the Figure 1.2 point set stays near-linear even though
// the instance realizes n²/4 distinct shallow rectangles.
func TestRectUniverseFigure12(t *testing.T) {
	in, err := Figure12(32)
	if err != nil {
		t.Fatal(err)
	}
	const w = 2
	universe := RectUniverse(in.Points, w)
	if universe.Count() > 32*w*w*(5+1)*6 {
		t.Fatalf("universe %d not near-linear", universe.Count())
	}
	// Every instance rectangle is 2-shallow, so its lazy pieces must all be
	// universe members.
	tree := NewXSplitTree(in.Points)
	members := make(map[string]bool, universe.Count())
	for _, p := range universe.Pieces() {
		members[pieceKey(p.Node, p.Elems)] = true
	}
	for id, s := range in.Shapes {
		proj := ContainedPoints(s, in.Points, nil)
		cs := NewCanonicalStore()
		CanonicalPieces(cs, tree, s, proj, in.Points)
		for _, p := range cs.Pieces() {
			if !members[pieceKey(p.Node, p.Elems)] {
				t.Fatalf("rect %d: lazy piece (node %d, %v) missing from universe", id, p.Node, p.Elems)
			}
		}
	}
}
