package geom

import (
	"math"
	"testing"

	"repro/internal/offline"
)

func TestFigure12Construction(t *testing.T) {
	in, err := Figure12(16)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 16 {
		t.Fatalf("n = %d", in.N())
	}
	// n²/4 distinct rectangles.
	if in.M() != 64 {
		t.Fatalf("m = %d, want 16²/4 = 64", in.M())
	}
	// Every rectangle contains exactly two points: one top, one bottom.
	for id, s := range in.Shapes {
		got := ContainedPoints(s, in.Points, nil)
		if len(got) != 2 {
			t.Fatalf("rect %d contains %d points (%v), want exactly 2", id, len(got), got)
		}
		if int(got[0]) >= 8 || int(got[1]) < 8 {
			t.Fatalf("rect %d contains %v: want one top (<8) and one bottom (>=8)", id, got)
		}
	}
	// All projections are distinct (that is why raw storage needs Ω(n²)).
	seen := map[[2]int32]bool{}
	for _, s := range in.Shapes {
		p := ContainedPoints(s, in.Points, nil)
		key := [2]int32{p[0], p[1]}
		if seen[key] {
			t.Fatalf("duplicate projection %v", key)
		}
		seen[key] = true
	}
}

func TestFigure12Errors(t *testing.T) {
	if _, err := Figure12(7); err == nil {
		t.Fatal("odd n should error")
	}
	if _, err := Figure12(0); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestFigure12CanonicalCompression(t *testing.T) {
	// The heart of Figure 1.2 + Lemma 4.2: n²/4 raw projections, but the
	// split-tree canonical family stays near-linear.
	const n = 64
	in, err := Figure12(n)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewXSplitTree(in.Points)
	cs := NewCanonicalStore()
	for _, s := range in.Shapes {
		proj := ContainedPoints(s, in.Points, nil)
		CanonicalPieces(cs, tree, s, proj, in.Points)
	}
	raw := in.M() // 1024 distinct projections
	if cs.Count() >= raw/4 {
		t.Fatalf("canonical pieces = %d, raw = %d: expected strong compression", cs.Count(), raw)
	}
	// Near-linear: within a polylog factor of n.
	limit := int(4 * float64(n) * math.Log2(float64(n)))
	if cs.Count() > limit {
		t.Fatalf("canonical pieces = %d exceed Õ(n) budget %d", cs.Count(), limit)
	}
}

func TestPlantedDisksGenerator(t *testing.T) {
	in, planted, err := PlantedDisks(300, 60, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 300 || in.M() != 60 || len(planted) != 9 {
		t.Fatalf("dims n=%d m=%d planted=%d", in.N(), in.M(), len(planted))
	}
	if !in.IsCover(planted) {
		t.Fatal("planted disks must cover all points")
	}
	if _, _, err := PlantedDisks(10, 5, 20, 1); err == nil {
		t.Fatal("k > m should error")
	}
}

func TestPlantedRectsGenerator(t *testing.T) {
	in, planted, err := PlantedRects(300, 80, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(planted) {
		t.Fatal("planted rects must cover all points")
	}
	for _, id := range planted {
		if in.Shapes[id].Kind() != "rect" {
			t.Fatal("planted shapes should be rects")
		}
	}
}

func TestPlantedTrianglesGenerator(t *testing.T) {
	in, planted, err := PlantedTriangles(300, 80, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(planted) {
		t.Fatal("planted triangles must cover all points")
	}
	// Planted triangles are right isoceles: 2-fat.
	for _, id := range planted {
		tri := in.Shapes[id].(Triangle)
		if !tri.IsFat(2.01) {
			t.Fatalf("planted triangle fatness %v > 2", tri.Fatness())
		}
	}
	if _, _, err := PlantedTriangles(300, 10, 9, 3); err == nil {
		t.Fatal("m < 2k should error")
	}
}

func TestAlgGeomSCDisks(t *testing.T) {
	in, planted, err := PlantedDisks(400, 1600, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	repo := NewShapeRepo(in)
	repo.Precompute()
	res, err := AlgGeomSC(repo, GeomOptions{Delta: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(res.Cover) {
		t.Fatal("algGeomSC cover invalid")
	}
	// Theorem 4.6: 3/δ + 1 passes.
	if res.Passes > 13 {
		t.Fatalf("passes = %d, want <= 13 for δ=1/4", res.Passes)
	}
	// O(ρ)-approximation vs the planted upper bound — generous constant.
	if len(res.Cover) > 20*len(planted) {
		t.Fatalf("cover %d vs planted %d", len(res.Cover), len(planted))
	}
}

func TestAlgGeomSCRects(t *testing.T) {
	in, planted, err := PlantedRects(400, 1600, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	repo := NewShapeRepo(in)
	repo.Precompute()
	res, err := AlgGeomSC(repo, GeomOptions{Delta: 0.25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(res.Cover) {
		t.Fatal("cover invalid")
	}
	_ = planted
}

func TestAlgGeomSCTriangles(t *testing.T) {
	in, _, err := PlantedTriangles(400, 1600, 16, 6)
	if err != nil {
		t.Fatal(err)
	}
	repo := NewShapeRepo(in)
	repo.Precompute()
	res, err := AlgGeomSC(repo, GeomOptions{Delta: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(res.Cover) {
		t.Fatal("cover invalid")
	}
}

func TestAlgGeomSCSpaceSublinearInM(t *testing.T) {
	// Theorem 4.6: space Õ(n), in particular it must not scale with m.
	// Quadruple m at fixed n and verify the peak space stays put (within
	// noise), far below m.
	mk := func(m int) int64 {
		in, _, err := PlantedDisks(300, m, 9, 7)
		if err != nil {
			t.Fatal(err)
		}
		repo := NewShapeRepo(in)
		repo.Precompute()
		res, err := AlgGeomSC(repo, GeomOptions{Delta: 0.25, Seed: 4, KMin: 4, KMax: 32})
		if err != nil {
			t.Fatal(err)
		}
		if !in.IsCover(res.Cover) {
			t.Fatal("cover invalid")
		}
		return res.SpaceWords
	}
	s1, s4 := mk(800), mk(3200)
	if s4 > 2*s1 {
		t.Fatalf("space grew with m: %d -> %d (want ~flat)", s1, s4)
	}
}

func TestAlgGeomSCEmptyPoints(t *testing.T) {
	repo := NewShapeRepo(&Instance{})
	res, err := AlgGeomSC(repo, GeomOptions{})
	if err != nil || !res.Valid {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestAlgGeomSCUncoverable(t *testing.T) {
	in := &Instance{
		Points: []Point{{0, 0}, {10, 10}},
		Shapes: []Shape{Disk{C: Point{0, 0}, R: 1}},
	}
	repo := NewShapeRepo(in)
	if _, err := AlgGeomSC(repo, GeomOptions{Seed: 1}); err == nil {
		t.Fatal("uncoverable instance should error")
	}
}

func TestAlgGeomSCBadDelta(t *testing.T) {
	repo := NewShapeRepo(&Instance{Points: []Point{{0, 0}}, Shapes: []Shape{Disk{C: Point{0, 0}, R: 1}}})
	if _, err := AlgGeomSC(repo, GeomOptions{Delta: 2}); err == nil {
		t.Fatal("delta=2 should error")
	}
}

func TestAlgGeomSCWithExactSolver(t *testing.T) {
	in, _, err := PlantedDisks(120, 240, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	repo := NewShapeRepo(in)
	repo.Precompute()
	res, err := AlgGeomSC(repo, GeomOptions{Delta: 0.25, Seed: 5, Offline: offline.Exact{}})
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(res.Cover) {
		t.Fatal("cover invalid")
	}
}

func TestAlgGeomSCFigure12(t *testing.T) {
	// End-to-end on the adversarial Figure 1.2 stream: m = n²/4 shapes,
	// space must stay near-linear in n.
	in, err := Figure12(64)
	if err != nil {
		t.Fatal(err)
	}
	repo := NewShapeRepo(in)
	repo.Precompute()
	res, err := AlgGeomSC(repo, GeomOptions{Delta: 0.25, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(res.Cover) {
		t.Fatal("cover invalid")
	}
	// OPT = n/2 = 32 (each shape covers exactly 2 points).
	if len(res.Cover) < 32 {
		t.Fatalf("cover %d below the information floor 32", len(res.Cover))
	}
	if len(res.Cover) > 4*32 {
		t.Fatalf("cover %d too far above OPT=32", len(res.Cover))
	}
}

func BenchmarkAlgGeomSCDisks(b *testing.B) {
	in, _, err := PlantedDisks(1000, 8000, 16, 1)
	if err != nil {
		b.Fatal(err)
	}
	repo := NewShapeRepo(in)
	repo.Precompute()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repo.ResetPasses()
		if _, err := AlgGeomSC(repo, GeomOptions{Delta: 0.25, Seed: int64(i), KMin: 8, KMax: 32}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCanonicalFigure12(b *testing.B) {
	in, err := Figure12(128)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := NewXSplitTree(in.Points)
		cs := NewCanonicalStore()
		for _, s := range in.Shapes {
			proj := ContainedPoints(s, in.Points, nil)
			CanonicalPieces(cs, tree, s, proj, in.Points)
		}
	}
}
