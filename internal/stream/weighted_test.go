package stream

import (
	"testing"

	"repro/internal/setcover"
)

func TestWeightedCapability(t *testing.T) {
	in := &setcover.Instance{N: 5, Sets: []setcover.Set{
		{ID: 0, Elems: []setcover.Elem{0, 1}},
		{ID: 1, Elems: []setcover.Elem{2, 3, 4}},
	}}

	// Unweighted SliceRepo: capability absent, helpers default to 1.
	r := NewSliceRepo(in)
	if HasWeights(r) {
		t.Fatal("unweighted SliceRepo claims weights")
	}
	if WeightOf(r, 1) != 1 || CoverWeight(r, []int{0, 1}) != 2 {
		t.Fatal("unweighted helpers must behave as all-ones")
	}

	// Weighted SliceRepo reads Instance.Weights.
	in.Weights = []float64{0.25, 4}
	wr := NewSliceRepo(in)
	if !HasWeights(wr) || WeightOf(wr, 0) != 0.25 || WeightOf(wr, 1) != 4 {
		t.Fatal("weighted SliceRepo does not expose Instance.Weights")
	}
	if got := CoverWeight(wr, []int{0, 1}); got != 4.25 {
		t.Fatalf("CoverWeight = %v, want 4.25", got)
	}

	// FuncRepo: unweighted until SetWeightFunc, then pure per-id costs.
	fr := NewFuncRepo(5, 2, func(id int) setcover.Set {
		es := make([]setcover.Elem, len(in.Sets[id].Elems))
		copy(es, in.Sets[id].Elems)
		return setcover.Set{ID: id, Elems: es}
	})
	if HasWeights(fr) || WeightOf(fr, 0) != 1 {
		t.Fatal("FuncRepo weighted before SetWeightFunc")
	}
	fr.SetWeightFunc(func(id int) float64 { return float64(id) + 0.5 })
	if !HasWeights(fr) || WeightOf(fr, 1) != 1.5 {
		t.Fatal("FuncRepo weight function not exposed")
	}
	if got := CoverWeight(fr, []int{0, 1}); got != 2 {
		t.Fatalf("CoverWeight = %v, want 2", got)
	}
}
