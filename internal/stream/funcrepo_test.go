package stream

import (
	"testing"

	"repro/internal/setcover"
)

func TestFuncRepoBasics(t *testing.T) {
	// Sets generated on the fly: set i covers {i, (i+1) mod n}.
	const n, m = 10, 10
	repo := NewFuncRepo(n, m, func(id int) setcover.Set {
		a, b := setcover.Elem(id), setcover.Elem((id+1)%n)
		if a > b {
			a, b = b, a
		}
		return setcover.Set{Elems: []setcover.Elem{a, b}}
	})
	if repo.UniverseSize() != n || repo.NumSets() != m {
		t.Fatal("dims wrong")
	}
	it := repo.Begin()
	count := 0
	for {
		s, ok := it.Next()
		if !ok {
			break
		}
		if s.ID != count {
			t.Fatalf("set ID %d at position %d", s.ID, count)
		}
		if len(s.Elems) != 2 {
			t.Fatalf("set %d has %d elems", s.ID, len(s.Elems))
		}
		count++
	}
	if count != m || repo.Passes() != 1 {
		t.Fatalf("count=%d passes=%d", count, repo.Passes())
	}
	repo.ResetPasses()
	if repo.Passes() != 0 {
		t.Fatal("reset failed")
	}
}

func TestFuncRepoRegeneratesPerPass(t *testing.T) {
	calls := 0
	repo := NewFuncRepo(4, 3, func(id int) setcover.Set {
		calls++
		return setcover.Set{Elems: []setcover.Elem{setcover.Elem(id)}}
	})
	for p := 0; p < 2; p++ {
		it := repo.Begin()
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}
	if calls != 6 {
		t.Fatalf("generator called %d times, want 6 (3 sets × 2 passes)", calls)
	}
}

// A sequential-only FuncRepo must decline segmentation without counting a
// pass (the engine then falls back to Begin), and a STATEFUL generator —
// exactly what NewSequentialFuncRepo exists for — must see ids strictly in
// stream order on every pass.
func TestSequentialFuncRepoDeclinesSegmentation(t *testing.T) {
	const n, m = 8, 20
	lastID := -1 // stateful: would be racy under segmented decode
	repo := NewSequentialFuncRepo(n, m, func(id int) setcover.Set {
		if id != lastID+1 {
			t.Errorf("generator called with id %d after %d (out of order)", id, lastID)
		}
		lastID = id
		return setcover.Set{Elems: []setcover.Elem{setcover.Elem(id % n)}}
	})
	if _, ok := repo.BeginSegmented(); ok {
		t.Fatal("sequential FuncRepo agreed to segment")
	}
	if repo.Passes() != 0 {
		t.Fatalf("declined BeginSegmented counted %d passes", repo.Passes())
	}
	for pass := 0; pass < 2; pass++ {
		lastID = -1
		it := repo.Begin()
		seen := 0
		for {
			s, ok := it.Next()
			if !ok {
				break
			}
			if s.ID != seen {
				t.Fatalf("pass %d: set ID %d at position %d", pass, s.ID, seen)
			}
			seen++
		}
		if seen != m {
			t.Fatalf("pass %d: saw %d of %d sets", pass, seen, m)
		}
	}
	if repo.Passes() != 2 {
		t.Fatalf("counted %d passes, want 2", repo.Passes())
	}
}

// The runtime guard: entering a sequential repository's generator from two
// goroutines at once must panic loudly, not race silently. The first call
// blocks inside gen on a channel; the overlapping second call must trip the
// guard deterministically.
func TestSequentialFuncRepoGuardPanicsOnConcurrentGen(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	repo := NewSequentialFuncRepo(4, 4, func(id int) setcover.Set {
		if id == 0 {
			close(entered)
			<-release
		}
		return setcover.Set{Elems: []setcover.Elem{setcover.Elem(id)}}
	})
	go func() {
		it := repo.Begin()
		it.Next() // enters gen(0) and blocks until released
	}()
	<-entered

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		it := repo.Begin()
		it.Next()
	}()
	p := <-panicked
	close(release)
	if p == nil {
		t.Fatal("concurrent generator entry did not panic")
	}
}
