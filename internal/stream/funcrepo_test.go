package stream

import (
	"testing"

	"repro/internal/setcover"
)

func TestFuncRepoBasics(t *testing.T) {
	// Sets generated on the fly: set i covers {i, (i+1) mod n}.
	const n, m = 10, 10
	repo := NewFuncRepo(n, m, func(id int) setcover.Set {
		a, b := setcover.Elem(id), setcover.Elem((id+1)%n)
		if a > b {
			a, b = b, a
		}
		return setcover.Set{Elems: []setcover.Elem{a, b}}
	})
	if repo.UniverseSize() != n || repo.NumSets() != m {
		t.Fatal("dims wrong")
	}
	it := repo.Begin()
	count := 0
	for {
		s, ok := it.Next()
		if !ok {
			break
		}
		if s.ID != count {
			t.Fatalf("set ID %d at position %d", s.ID, count)
		}
		if len(s.Elems) != 2 {
			t.Fatalf("set %d has %d elems", s.ID, len(s.Elems))
		}
		count++
	}
	if count != m || repo.Passes() != 1 {
		t.Fatalf("count=%d passes=%d", count, repo.Passes())
	}
	repo.ResetPasses()
	if repo.Passes() != 0 {
		t.Fatal("reset failed")
	}
}

func TestFuncRepoRegeneratesPerPass(t *testing.T) {
	calls := 0
	repo := NewFuncRepo(4, 3, func(id int) setcover.Set {
		calls++
		return setcover.Set{Elems: []setcover.Elem{setcover.Elem(id)}}
	})
	for p := 0; p < 2; p++ {
		it := repo.Begin()
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}
	if calls != 6 {
		t.Fatalf("generator called %d times, want 6 (3 sets × 2 passes)", calls)
	}
}
