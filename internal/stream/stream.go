// Package stream implements the data-stream model of the paper (Section 1):
// the elements of U fit in memory, the sets r_1, ..., r_m live in a read-only
// repository, and an algorithm may only access them through sequential
// passes. The package provides:
//
//   - Repository: a pass-counted, read-only view of the set family. Every
//     call to Begin starts (and counts) a new sequential scan.
//   - SegmentedRepository: the optional capability for repositories whose
//     passes can be decoded as contiguous chunks on several goroutines
//     (BeginSegmented still counts exactly one pass); the pass engine uses
//     it to make the CPU-bound decode data-parallel without changing what
//     any observer sees.
//   - ErrorReader: the optional mid-pass failure surface. A reader whose
//     pass ends early (truncated or corrupt backing file) reports why, and
//     the engine turns it into a failed pass instead of a silently short one.
//   - Tracker: an explicit space meter. Streaming algorithms charge the words
//     of read-write memory they hold; Peak() is the space column of the
//     paper's Figure 1.1.
//
// The repository contents themselves are never charged — in the model they
// sit on cheap external storage — only what the algorithm copies into its
// working memory is.
package stream

import (
	"fmt"
	"sync/atomic"

	"repro/internal/setcover"
)

// Reader yields the sets of one sequential pass, in stream order.
type Reader interface {
	// Next returns the next set of the pass. ok is false when the pass is
	// exhausted.
	Next() (s setcover.Set, ok bool)
}

// BatchReader is an optional fast path a Reader may implement: NextBatch
// fills dst (up to cap(dst)) with the next sets of the pass and returns how
// many were written, amortizing the per-set interface call of Next. Zero
// means the pass is exhausted. internal/engine probes for this interface and
// falls back to Next otherwise; the two must yield identical streams.
type BatchReader interface {
	NextBatch(dst []setcover.Set) int
}

// ErrorReader is an optional interface a Reader may implement when its pass
// can fail mid-stream (a disk-backed decode hitting truncation or
// corruption): Err returns the error that ended the pass early, or nil for a
// healthy pass. The pass engine probes it after draining a reader and turns a
// non-nil result into a failed pass — a partial scan must never pass for a
// full one. Readers that cannot fail simply do not implement it.
type ErrorReader interface {
	Err() error
}

// ReaderErr returns the mid-pass error of a reader that reports one, or nil.
func ReaderErr(r Reader) error {
	if er, ok := r.(ErrorReader); ok {
		return er.Err()
	}
	return nil
}

// SegmentSource hands out readers over contiguous chunks of one counted
// pass. Segment may be called from several goroutines at once; each returned
// reader is driven by a single goroutine and yields exactly the sets
// [start, end) of the stream, in stream order. Chunk readers exist so the
// CPU-bound part of a pass (decoding) can run data-parallel; the pass engine
// reassembles their outputs in stream order, so observers cannot tell a
// segmented pass from a sequential one.
type SegmentSource interface {
	Segment(start, end int) Reader
}

// DecodeCost classifies how much CPU work a SegmentSource spends producing
// one set — the signal the pass engine uses to decide whether chunked
// parallel decode can win anything.
type DecodeCost int

const (
	// DecodeCostHeavy is real per-set CPU work (varint decode of a disk
	// page, running a generator function): parallel chunk decode pays for
	// its fan-out. The zero value — an absent signal means heavy, so
	// sources that do not implement DecodeCoster keep the segmented path.
	DecodeCostHeavy DecodeCost = iota
	// DecodeCostTrivial is a header memcpy or cheaper (SliceRepo hands out
	// pre-built sets): there is nothing to parallelize, and the engine
	// drives the pass as one sequential segment instead of paying the
	// chunk fan-out and reorder overhead for no decode win.
	DecodeCostTrivial
)

// DecodeCoster is the optional decode-cost signal a SegmentSource may
// implement. The pass engine probes it after BeginSegmented (the pass is
// already counted either way): a trivial source is read as the single
// segment [0, m) on one goroutine, a heavy (or silent) source is decoded as
// parallel chunks. Results are identical in both modes — this is purely a
// wall-clock signal.
type DecodeCoster interface {
	DecodeCost() DecodeCost
}

// SegmentPlanner is the optional chunk-planning hook a SegmentSource may
// implement when it knows the per-set decode COST — in practice the encoded
// byte length, which a disk repository's seek index records. PlanSegments
// returns the chunk boundaries for one segmented pass as a strictly
// increasing slice b with b[0] == 0 and b[len(b)-1] == m; chunk i is the set
// range [b[i], b[i+1]), and targetChunks is the engine's hint for how many
// chunks it would otherwise cut (ceil(m/BatchSize)).
//
// The point is load balance under skew: uniform set-count chunks serialize a
// pass on one pathologically large set (the whole chunk containing it decodes
// on a single goroutine while the others finish and idle), whereas
// byte-balanced chunks give the big set its own chunk and keep the rest
// ≈equal in bytes. The engine validates the returned boundaries and falls
// back to uniform set-count chunks if they are malformed; either way the
// reassembled stream is byte-identical — a plan moves wall-clock only.
// Sources that cost all sets equally simply do not implement it.
type SegmentPlanner interface {
	PlanSegments(targetChunks int) []int
}

// SegmentedRepository is an optional capability a Repository may implement
// when its passes can be split into independently decodable set ranges:
// BeginSegmented starts ONE counted pass (exactly like Begin) whose stream
// will be read through SegmentSource.Segment readers instead of a single
// sequential reader. ok reports whether segmentation is available for this
// pass — a disk repository without its seek index returns false and callers
// fall back to Begin. A false return must not count a pass.
type SegmentedRepository interface {
	BeginSegmented() (src SegmentSource, ok bool)
}

// ByteSized is the optional capability a Repository may implement when its
// stream has a well-defined encoded size: DataBytes returns the byte length
// of the data section one full pass decodes (the SCB1 set-data section for a
// disk repository). It is a measurement surface only — the pass engine
// stamps it into trace records (internal/obs) so per-pass throughput can be
// computed — and never affects what a pass yields. In-memory and generated
// repositories, whose passes decode no bytes, simply do not implement it.
type ByteSized interface {
	DataBytes() int64
}

// Recycler is an optional interface a Reader may implement when its sets are
// decoded into buffers the reader owns (disk-backed repositories): Recycle
// hands a batch previously returned by NextBatch back to the reader once
// every consumer is done with it, so the element buffers can be reused for
// later batches instead of becoming garbage. Only internal/engine calls it,
// and only after all observers have returned from Observe — which is exactly
// the engine's documented no-retention discipline. Recycle may be called from
// a different goroutine than NextBatch.
type Recycler interface {
	Recycle(sets []setcover.Set)
}

// Weighted is the optional per-set cost capability a Repository may
// implement when its family carries weights (the weighted set cover
// problem). Weight(id) returns the positive cost of set id; HasWeights
// reports whether a cost vector is actually present — a repository may
// implement the interface but hold no weights (a plain SCB1 file opened by
// scdisk.Repo), in which case every set costs 1. Weights are part of the
// repository contents and, like the sets themselves, are never charged to a
// Tracker; only what an algorithm copies into working memory is.
//
// Weight must be safe for concurrent calls (the pass engine's observers may
// consult it from the observer goroutine while segment decoders run) and
// must be a pure function of id for the life of the repository.
type Weighted interface {
	HasWeights() bool
	Weight(id int) float64
}

// Mutable is the optional capability of a repository whose set family can
// CHANGE after creation: sets may be appended (new IDs at the end of the
// stream) and tombstoned (the set keeps its ID but streams empty from then
// on). It is the write-side counterpart of Repository, implemented by
// internal/scdyn over an SCB1 base file plus an additive delta log.
//
// The identity contract is the load-bearing part: every successful mutation
// produces a NEW content digest (a hash chain over the base digest and every
// delta record), so a mutated family can never alias a cache entry, a routing
// decision, or a pooled handle that was keyed by the pre-mutation digest.
// Generation counts applied mutations; (Generation, ContentDigest) advance
// together and a given generation's digest never changes once minted.
//
// Mutations are serialized by the implementation and safe to call
// concurrently with passes over previously obtained views — a view is a
// snapshot pinned to the generation it was taken at, which is what lets a
// solve that started before a mutation finish against pre-mutation content.
type Mutable interface {
	// AppendSet adds a set with the given sorted-unique elements in [0, n)
	// and returns its new ID (always the current NumSets) and the
	// post-mutation content digest.
	AppendSet(elems []setcover.Elem) (id int, digest string, err error)
	// Tombstone empties the set with the given ID (it keeps its stream
	// position) and returns the post-mutation content digest. Tombstoning an
	// unknown or already-tombstoned ID is an error.
	Tombstone(id int) (digest string, err error)
	// ContentDigest returns the digest identifying the CURRENT family.
	ContentDigest() string
	// Generation returns how many mutations have been applied.
	Generation() int
}

// HasWeights reports whether r carries a per-set cost vector.
func HasWeights(r Repository) bool {
	w, ok := r.(Weighted)
	return ok && w.HasWeights()
}

// WeightOf returns the cost of set id in r: its Weighted weight when the
// capability is present and populated, 1 otherwise (the unweighted problem).
func WeightOf(r Repository, id int) float64 {
	if w, ok := r.(Weighted); ok && w.HasWeights() {
		return w.Weight(id)
	}
	return 1
}

// CoverWeight returns the total cost of the sets whose IDs are listed in
// cover. On unweighted repositories it equals len(cover).
func CoverWeight(r Repository, cover []int) float64 {
	if w, ok := r.(Weighted); ok && w.HasWeights() {
		total := 0.0
		for _, id := range cover {
			total += w.Weight(id)
		}
		return total
	}
	return float64(len(cover))
}

// Repository is a read-only, sequentially scannable set family.
type Repository interface {
	// UniverseSize returns n = |U|.
	UniverseSize() int
	// NumSets returns m = |F|.
	NumSets() int
	// Begin starts a new pass over the family and returns its reader.
	// Each call increments the pass counter.
	Begin() Reader
	// Passes returns the number of passes started so far.
	Passes() int
}

// SliceRepo is the standard in-memory Repository backed by an Instance.
// It also records the maximum number of concurrently open passes, which tests
// use to prove that "parallel guesses" of iterSetCover share physical passes
// instead of multiplying them.
type SliceRepo struct {
	inst   *setcover.Instance
	passes atomic.Int64
}

// NewSliceRepo wraps an instance as a stream repository.
func NewSliceRepo(in *setcover.Instance) *SliceRepo {
	return &SliceRepo{inst: in}
}

// UniverseSize returns n.
func (r *SliceRepo) UniverseSize() int { return r.inst.N }

// NumSets returns m.
func (r *SliceRepo) NumSets() int { return len(r.inst.Sets) }

// Passes returns the number of passes started so far.
func (r *SliceRepo) Passes() int { return int(r.passes.Load()) }

// ResetPasses zeroes the pass counter (used between experiment phases).
func (r *SliceRepo) ResetPasses() { r.passes.Store(0) }

// Instance exposes the backing instance for verification code (ground truth,
// validity checks). Streaming algorithms must not call this; tests enforce
// the discipline by construction.
func (r *SliceRepo) Instance() *setcover.Instance { return r.inst }

// HasWeights implements Weighted: true when the backing instance carries a
// per-set cost vector.
func (r *SliceRepo) HasWeights() bool { return r.inst.Weighted() }

// Weight implements Weighted: the cost of set id (1 on unweighted instances).
func (r *SliceRepo) Weight(id int) float64 { return r.inst.Weight(id) }

// Begin starts a new pass.
func (r *SliceRepo) Begin() Reader {
	r.passes.Add(1)
	return &sliceReader{sets: r.inst.Sets}
}

// BeginSegmented implements SegmentedRepository: an in-memory family can
// always be read from any set index, so every pass is segmentable.
func (r *SliceRepo) BeginSegmented() (SegmentSource, bool) {
	r.passes.Add(1)
	return sliceSegSource{sets: r.inst.Sets}, true
}

type sliceSegSource struct{ sets []setcover.Set }

func (s sliceSegSource) Segment(start, end int) Reader {
	return &sliceReader{sets: s.sets[:end], pos: start}
}

// DecodeCost implements DecodeCoster: handing out an in-memory set is a
// header copy, so parallel chunk decode has nothing to win and the engine
// reads the pass as one sequential segment at any worker count.
func (s sliceSegSource) DecodeCost() DecodeCost { return DecodeCostTrivial }

type sliceReader struct {
	sets []setcover.Set
	pos  int
}

func (it *sliceReader) Next() (setcover.Set, bool) {
	if it.pos >= len(it.sets) {
		return setcover.Set{}, false
	}
	s := it.sets[it.pos]
	it.pos++
	return s, true
}

// NextBatch copies up to cap(dst) sets into dst in stream order.
func (it *sliceReader) NextBatch(dst []setcover.Set) int {
	n := copy(dst[:cap(dst)], it.sets[it.pos:])
	it.pos += n
	return n
}

// FuncRepo is a Repository whose sets are produced on demand by a generator
// function — a true streaming source with no backing slice, so nothing can
// be randomly accessed or retained between passes. It exists both as a
// discipline check (algorithms must work against any Repository) and as a
// way to stream instances too large to materialize.
type FuncRepo struct {
	n, m   int
	gen    func(id int) setcover.Set
	weight func(id int) float64 // optional per-set cost (SetWeightFunc)
	passes atomic.Int64
	// sequential opts this repository out of segmented decode (see
	// NewSequentialFuncRepo): BeginSegmented reports false, so the pass
	// engine always drives gen from a single goroutine per pass.
	sequential bool
	// inGen guards sequential repositories at runtime: a generator that is
	// entered concurrently anyway (two overlapping passes driven from
	// different goroutines) panics loudly instead of racing silently.
	inGen atomic.Bool
}

// NewFuncRepo builds a repository of m sets over n elements; gen(id) must
// return set id with sorted-unique elements in [0, n) and is called once per
// set per pass. gen must be safe for concurrent calls — a pure function of
// id (gen.PlantedFunc is the model citizen): FuncRepo implements
// SegmentedRepository, so the pass engine may generate disjoint set ranges
// on several goroutines at once. The returned Elems must be freshly
// allocated (or at least never mutated afterwards): observers on other
// goroutines read them while gen is already producing later sets, so a
// generator that reuses a scratch buffer would corrupt in-flight sets.
func NewFuncRepo(n, m int, gen func(id int) setcover.Set) *FuncRepo {
	return &FuncRepo{n: n, m: m, gen: gen}
}

// NewSequentialFuncRepo is NewFuncRepo for generators that are NOT safe for
// concurrent calls — stateful closures (an iterator over an external source,
// a shared scratch RNG) that the segmented-decode contract of NewFuncRepo
// would race. The returned repository opts out of segmented decode entirely
// (BeginSegmented reports false, so the pass engine uses its single-reader
// path at every worker count) and additionally guards gen at runtime: if two
// goroutines still end up inside gen at once — overlapping passes driven
// concurrently, which no engine does but direct scanners could — the second
// call panics with a diagnostic instead of corrupting state silently. The
// guard is a best-effort tripwire (a true data race may escape it on rare
// interleavings), but it turns the common misuse into a loud failure; run
// under -race to catch the rest.
func NewSequentialFuncRepo(n, m int, gen func(id int) setcover.Set) *FuncRepo {
	r := &FuncRepo{n: n, m: m, sequential: true}
	r.gen = func(id int) setcover.Set {
		if !r.inGen.CompareAndSwap(false, true) {
			panic("stream: sequential FuncRepo generator entered concurrently; " +
				"use NewFuncRepo (with a concurrency-safe generator) for parallel passes")
		}
		defer r.inGen.Store(false)
		return gen(id)
	}
	return r
}

// SetWeightFunc attaches a per-set cost function, turning the repository
// into a weighted family: weight(id) must return a finite, strictly positive
// cost and obey the same purity/concurrency contract as gen (it may be
// called from several goroutines, for any id, any number of times —
// gen.WeightedFunc is the model citizen). nil detaches. Call before starting
// passes; swapping weights mid-algorithm yields nonsense.
func (r *FuncRepo) SetWeightFunc(weight func(id int) float64) {
	r.weight = weight
}

// HasWeights implements Weighted: true when a weight function is attached.
func (r *FuncRepo) HasWeights() bool { return r.weight != nil }

// Weight implements Weighted: the cost of set id (1 when no weight function
// is attached).
func (r *FuncRepo) Weight(id int) float64 {
	if r.weight == nil {
		return 1
	}
	return r.weight(id)
}

// UniverseSize returns n.
func (r *FuncRepo) UniverseSize() int { return r.n }

// NumSets returns m.
func (r *FuncRepo) NumSets() int { return r.m }

// Passes returns the number of passes started so far.
func (r *FuncRepo) Passes() int { return int(r.passes.Load()) }

// ResetPasses zeroes the pass counter.
func (r *FuncRepo) ResetPasses() { r.passes.Store(0) }

// Begin starts a new pass.
func (r *FuncRepo) Begin() Reader {
	r.passes.Add(1)
	return &funcReader{repo: r, end: r.m}
}

// BeginSegmented implements SegmentedRepository: generation is random-access
// by construction (gen is a function of the set id), so every pass is
// segmentable — except for sequential-only repositories
// (NewSequentialFuncRepo), which decline without counting a pass and fall
// back to Begin. See NewFuncRepo for the concurrency contract this puts on
// gen.
func (r *FuncRepo) BeginSegmented() (SegmentSource, bool) {
	if r.sequential {
		return nil, false
	}
	r.passes.Add(1)
	return funcSegSource{repo: r}, true
}

type funcSegSource struct{ repo *FuncRepo }

func (s funcSegSource) Segment(start, end int) Reader {
	return &funcReader{repo: s.repo, pos: start, end: end}
}

type funcReader struct {
	repo *FuncRepo
	pos  int
	end  int
}

func (it *funcReader) Next() (setcover.Set, bool) {
	if it.pos >= it.end {
		return setcover.Set{}, false
	}
	s := it.repo.gen(it.pos)
	s.ID = it.pos
	it.pos++
	return s, true
}

// NextBatch generates up to cap(dst) sets into dst in stream order.
func (it *funcReader) NextBatch(dst []setcover.Set) int {
	dst = dst[:cap(dst)]
	n := 0
	for n < len(dst) && it.pos < it.end {
		s := it.repo.gen(it.pos)
		s.ID = it.pos
		dst[n] = s
		it.pos++
		n++
	}
	return n
}

// Tracker is an explicit space meter, in 64-bit words. Algorithms call Grow
// when they allocate working state and Shrink when they release it; Peak
// reports the high-water mark. Tracker is safe for concurrent use: the
// pass engine (internal/engine) fans one physical pass out to observers
// running on several goroutines, all charging the same meter. The current
// total is an atomic counter and the high-water mark is maintained with a
// CAS loop, so concurrent Grows are linearizable. Note that during a
// Grow-only phase (which is what passes are — releases happen between
// passes) the final Peak is independent of goroutine interleaving, which is
// what makes space accounting deterministic across worker counts.
type Tracker struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// NewTracker returns a zeroed tracker.
func NewTracker() *Tracker { return &Tracker{} }

// Grow charges w words of working memory.
func (t *Tracker) Grow(w int64) {
	if w < 0 {
		panic("stream: Grow with negative words")
	}
	c := t.cur.Add(w)
	t.raisePeak(c)
}

// raisePeak lifts the high-water mark to at least c.
func (t *Tracker) raisePeak(c int64) {
	for {
		p := t.peak.Load()
		if c <= p || t.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

// Shrink releases w words.
func (t *Tracker) Shrink(w int64) {
	if w < 0 {
		panic("stream: Shrink with negative words")
	}
	if c := t.cur.Add(-w); c < 0 {
		panic(fmt.Sprintf("stream: tracker went negative (%d)", c))
	}
}

// FreeAll releases everything currently held (end of an iteration whose
// state is discarded, cf. Lemma 2.2: "the algorithm does not need to keep the
// memory space used by the earlier iterations").
func (t *Tracker) FreeAll() { t.cur.Store(0) }

// Current returns the words currently held.
func (t *Tracker) Current() int64 { return t.cur.Load() }

// Peak returns the high-water mark in words.
func (t *Tracker) Peak() int64 { return t.peak.Load() }

// Max merges another tracker's peak into this one (used when alternatives
// run sequentially but are accounted as parallel).
func (t *Tracker) Max(other *Tracker) {
	t.raisePeak(other.peak.Load())
}

// WordsForElems returns the space charge for storing k element indices.
// Elements are int32, two per word.
func WordsForElems(k int) int64 { return int64((k + 1) / 2) }

// WordsForBitset returns the space charge for a bitset over a universe of n.
func WordsForBitset(n int) int64 { return int64((n + 63) / 64) }

// WordsForIDs returns the space charge for storing k set IDs (one word each).
func WordsForIDs(k int) int64 { return int64(k) }
