// Package stream implements the data-stream model of the paper (Section 1):
// the elements of U fit in memory, the sets r_1, ..., r_m live in a read-only
// repository, and an algorithm may only access them through sequential
// passes. The package provides:
//
//   - Repository: a pass-counted, read-only view of the set family. Every
//     call to Begin starts (and counts) a new sequential scan.
//   - Tracker: an explicit space meter. Streaming algorithms charge the words
//     of read-write memory they hold; Peak() is the space column of the
//     paper's Figure 1.1.
//
// The repository contents themselves are never charged — in the model they
// sit on cheap external storage — only what the algorithm copies into its
// working memory is.
package stream

import (
	"fmt"
	"sync/atomic"

	"repro/internal/setcover"
)

// Reader yields the sets of one sequential pass, in stream order.
type Reader interface {
	// Next returns the next set of the pass. ok is false when the pass is
	// exhausted.
	Next() (s setcover.Set, ok bool)
}

// Repository is a read-only, sequentially scannable set family.
type Repository interface {
	// UniverseSize returns n = |U|.
	UniverseSize() int
	// NumSets returns m = |F|.
	NumSets() int
	// Begin starts a new pass over the family and returns its reader.
	// Each call increments the pass counter.
	Begin() Reader
	// Passes returns the number of passes started so far.
	Passes() int
}

// SliceRepo is the standard in-memory Repository backed by an Instance.
// It also records the maximum number of concurrently open passes, which tests
// use to prove that "parallel guesses" of iterSetCover share physical passes
// instead of multiplying them.
type SliceRepo struct {
	inst   *setcover.Instance
	passes atomic.Int64
}

// NewSliceRepo wraps an instance as a stream repository.
func NewSliceRepo(in *setcover.Instance) *SliceRepo {
	return &SliceRepo{inst: in}
}

// UniverseSize returns n.
func (r *SliceRepo) UniverseSize() int { return r.inst.N }

// NumSets returns m.
func (r *SliceRepo) NumSets() int { return len(r.inst.Sets) }

// Passes returns the number of passes started so far.
func (r *SliceRepo) Passes() int { return int(r.passes.Load()) }

// ResetPasses zeroes the pass counter (used between experiment phases).
func (r *SliceRepo) ResetPasses() { r.passes.Store(0) }

// Instance exposes the backing instance for verification code (ground truth,
// validity checks). Streaming algorithms must not call this; tests enforce
// the discipline by construction.
func (r *SliceRepo) Instance() *setcover.Instance { return r.inst }

// Begin starts a new pass.
func (r *SliceRepo) Begin() Reader {
	r.passes.Add(1)
	return &sliceReader{sets: r.inst.Sets}
}

type sliceReader struct {
	sets []setcover.Set
	pos  int
}

func (it *sliceReader) Next() (setcover.Set, bool) {
	if it.pos >= len(it.sets) {
		return setcover.Set{}, false
	}
	s := it.sets[it.pos]
	it.pos++
	return s, true
}

// FuncRepo is a Repository whose sets are produced on demand by a generator
// function — a true streaming source with no backing slice, so nothing can
// be randomly accessed or retained between passes. It exists both as a
// discipline check (algorithms must work against any Repository) and as a
// way to stream instances too large to materialize.
type FuncRepo struct {
	n, m   int
	gen    func(id int) setcover.Set
	passes atomic.Int64
}

// NewFuncRepo builds a repository of m sets over n elements; gen(id) must
// return set id with sorted-unique elements in [0, n) and is called once per
// set per pass.
func NewFuncRepo(n, m int, gen func(id int) setcover.Set) *FuncRepo {
	return &FuncRepo{n: n, m: m, gen: gen}
}

// UniverseSize returns n.
func (r *FuncRepo) UniverseSize() int { return r.n }

// NumSets returns m.
func (r *FuncRepo) NumSets() int { return r.m }

// Passes returns the number of passes started so far.
func (r *FuncRepo) Passes() int { return int(r.passes.Load()) }

// ResetPasses zeroes the pass counter.
func (r *FuncRepo) ResetPasses() { r.passes.Store(0) }

// Begin starts a new pass.
func (r *FuncRepo) Begin() Reader {
	r.passes.Add(1)
	return &funcReader{repo: r}
}

type funcReader struct {
	repo *FuncRepo
	pos  int
}

func (it *funcReader) Next() (setcover.Set, bool) {
	if it.pos >= it.repo.m {
		return setcover.Set{}, false
	}
	s := it.repo.gen(it.pos)
	s.ID = it.pos
	it.pos++
	return s, true
}

// Tracker is an explicit space meter, in 64-bit words. Algorithms call Grow
// when they allocate working state and Shrink when they release it; Peak
// reports the high-water mark. Tracker is not safe for concurrent use — the
// algorithms here are single-goroutine, matching the streaming model.
type Tracker struct {
	cur  int64
	peak int64
}

// NewTracker returns a zeroed tracker.
func NewTracker() *Tracker { return &Tracker{} }

// Grow charges w words of working memory.
func (t *Tracker) Grow(w int64) {
	if w < 0 {
		panic("stream: Grow with negative words")
	}
	t.cur += w
	if t.cur > t.peak {
		t.peak = t.cur
	}
}

// Shrink releases w words.
func (t *Tracker) Shrink(w int64) {
	if w < 0 {
		panic("stream: Shrink with negative words")
	}
	t.cur -= w
	if t.cur < 0 {
		panic(fmt.Sprintf("stream: tracker went negative (%d)", t.cur))
	}
}

// FreeAll releases everything currently held (end of an iteration whose
// state is discarded, cf. Lemma 2.2: "the algorithm does not need to keep the
// memory space used by the earlier iterations").
func (t *Tracker) FreeAll() { t.cur = 0 }

// Current returns the words currently held.
func (t *Tracker) Current() int64 { return t.cur }

// Peak returns the high-water mark in words.
func (t *Tracker) Peak() int64 { return t.peak }

// Max merges another tracker's peak into this one (used when alternatives
// run sequentially but are accounted as parallel).
func (t *Tracker) Max(other *Tracker) {
	if other.peak > t.peak {
		t.peak = other.peak
	}
}

// WordsForElems returns the space charge for storing k element indices.
// Elements are int32, two per word.
func WordsForElems(k int) int64 { return int64((k + 1) / 2) }

// WordsForBitset returns the space charge for a bitset over a universe of n.
func WordsForBitset(n int) int64 { return int64((n + 63) / 64) }

// WordsForIDs returns the space charge for storing k set IDs (one word each).
func WordsForIDs(k int) int64 { return int64(k) }
