package stream

import (
	"sync"
	"testing"

	"repro/internal/setcover"
)

func inst() *setcover.Instance {
	in := &setcover.Instance{N: 4, Sets: []setcover.Set{
		{Elems: []setcover.Elem{0, 1}},
		{Elems: []setcover.Elem{2}},
		{Elems: []setcover.Elem{3}},
	}}
	in.Normalize()
	return in
}

func TestSliceRepoBasics(t *testing.T) {
	r := NewSliceRepo(inst())
	if r.UniverseSize() != 4 || r.NumSets() != 3 {
		t.Fatalf("dims = %d/%d", r.UniverseSize(), r.NumSets())
	}
	if r.Passes() != 0 {
		t.Fatalf("Passes = %d before any Begin", r.Passes())
	}
}

func TestPassCountingAndOrder(t *testing.T) {
	r := NewSliceRepo(inst())
	for p := 1; p <= 3; p++ {
		it := r.Begin()
		if r.Passes() != p {
			t.Fatalf("Passes = %d, want %d", r.Passes(), p)
		}
		var ids []int
		for {
			s, ok := it.Next()
			if !ok {
				break
			}
			ids = append(ids, s.ID)
		}
		if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
			t.Fatalf("pass %d yielded %v", p, ids)
		}
		// Next after exhaustion keeps returning false.
		if _, ok := it.Next(); ok {
			t.Fatal("Next after exhaustion returned ok")
		}
	}
}

func TestResetPasses(t *testing.T) {
	r := NewSliceRepo(inst())
	r.Begin()
	r.Begin()
	r.ResetPasses()
	if r.Passes() != 0 {
		t.Fatalf("Passes after reset = %d", r.Passes())
	}
}

func TestTrackerGrowShrinkPeak(t *testing.T) {
	tr := NewTracker()
	tr.Grow(10)
	tr.Grow(5)
	if tr.Current() != 15 || tr.Peak() != 15 {
		t.Fatalf("cur=%d peak=%d", tr.Current(), tr.Peak())
	}
	tr.Shrink(12)
	if tr.Current() != 3 || tr.Peak() != 15 {
		t.Fatalf("cur=%d peak=%d after shrink", tr.Current(), tr.Peak())
	}
	tr.Grow(4)
	if tr.Peak() != 15 {
		t.Fatalf("peak should stay 15, got %d", tr.Peak())
	}
	tr.FreeAll()
	if tr.Current() != 0 || tr.Peak() != 15 {
		t.Fatalf("FreeAll: cur=%d peak=%d", tr.Current(), tr.Peak())
	}
}

func TestTrackerPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative grow":   func() { NewTracker().Grow(-1) },
		"negative shrink": func() { NewTracker().Shrink(-1) },
		"underflow":       func() { NewTracker().Shrink(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTrackerMax(t *testing.T) {
	a, b := NewTracker(), NewTracker()
	a.Grow(5)
	b.Grow(9)
	a.Max(b)
	if a.Peak() != 9 {
		t.Fatalf("Max: peak=%d, want 9", a.Peak())
	}
	b2 := NewTracker()
	b2.Grow(1)
	a.Max(b2)
	if a.Peak() != 9 {
		t.Fatalf("Max with smaller peak changed peak to %d", a.Peak())
	}
}

func TestTrackerConcurrent(t *testing.T) {
	// A Grow-only phase from many goroutines (the engine's fan-out shape)
	// must end with cur == sum of charges and peak == cur, regardless of
	// interleaving. Run under -race this also proves memory safety.
	const goroutines, grows = 8, 1000
	tr := NewTracker()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < grows; i++ {
				tr.Grow(3)
			}
		}()
	}
	wg.Wait()
	want := int64(goroutines * grows * 3)
	if tr.Current() != want || tr.Peak() != want {
		t.Fatalf("cur=%d peak=%d, want both %d", tr.Current(), tr.Peak(), want)
	}
	// Concurrent Shrinks back to zero must not underflow or move the peak.
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < grows; i++ {
				tr.Shrink(3)
			}
		}()
	}
	wg.Wait()
	if tr.Current() != 0 || tr.Peak() != want {
		t.Fatalf("after shrink: cur=%d peak=%d, want 0/%d", tr.Current(), tr.Peak(), want)
	}
}

func TestBatchReaders(t *testing.T) {
	// Both repository readers implement the BatchReader fast path and must
	// yield exactly the stream Next would.
	repos := map[string]Repository{
		"slice": NewSliceRepo(inst()),
		"func": NewFuncRepo(4, 3, func(id int) setcover.Set {
			return setcover.Set{Elems: []setcover.Elem{int32(id)}}
		}),
	}
	for name, r := range repos {
		br, ok := r.Begin().(BatchReader)
		if !ok {
			t.Fatalf("%s: reader does not implement BatchReader", name)
		}
		buf := make([]setcover.Set, 2)
		var ids []int
		for {
			n := br.NextBatch(buf)
			if n == 0 {
				break
			}
			for _, s := range buf[:n] {
				ids = append(ids, s.ID)
			}
		}
		if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
			t.Fatalf("%s: batched pass yielded %v", name, ids)
		}
	}
}

func TestWordCharges(t *testing.T) {
	if WordsForElems(0) != 0 || WordsForElems(1) != 1 || WordsForElems(2) != 1 || WordsForElems(3) != 2 {
		t.Fatal("WordsForElems wrong")
	}
	if WordsForBitset(0) != 0 || WordsForBitset(1) != 1 || WordsForBitset(64) != 1 || WordsForBitset(65) != 2 {
		t.Fatal("WordsForBitset wrong")
	}
	if WordsForIDs(7) != 7 {
		t.Fatal("WordsForIDs wrong")
	}
}

func TestConcurrentReadersIndependent(t *testing.T) {
	// Two interleaved passes must not share cursor state (the "parallel
	// guesses" of iterSetCover rely on this when they share a physical scan).
	r := NewSliceRepo(inst())
	a, b := r.Begin(), r.Begin()
	sa, _ := a.Next()
	sb, _ := b.Next()
	if sa.ID != 0 || sb.ID != 0 {
		t.Fatal("each reader should start at set 0")
	}
	sa2, _ := a.Next()
	if sa2.ID != 1 {
		t.Fatal("reader a should advance independently")
	}
	sb2, _ := b.Next()
	if sb2.ID != 1 {
		t.Fatal("reader b should advance independently")
	}
	if r.Passes() != 2 {
		t.Fatalf("Passes = %d, want 2", r.Passes())
	}
}
