package stream

import (
	"testing"

	"repro/internal/setcover"
)

func inst() *setcover.Instance {
	in := &setcover.Instance{N: 4, Sets: []setcover.Set{
		{Elems: []setcover.Elem{0, 1}},
		{Elems: []setcover.Elem{2}},
		{Elems: []setcover.Elem{3}},
	}}
	in.Normalize()
	return in
}

func TestSliceRepoBasics(t *testing.T) {
	r := NewSliceRepo(inst())
	if r.UniverseSize() != 4 || r.NumSets() != 3 {
		t.Fatalf("dims = %d/%d", r.UniverseSize(), r.NumSets())
	}
	if r.Passes() != 0 {
		t.Fatalf("Passes = %d before any Begin", r.Passes())
	}
}

func TestPassCountingAndOrder(t *testing.T) {
	r := NewSliceRepo(inst())
	for p := 1; p <= 3; p++ {
		it := r.Begin()
		if r.Passes() != p {
			t.Fatalf("Passes = %d, want %d", r.Passes(), p)
		}
		var ids []int
		for {
			s, ok := it.Next()
			if !ok {
				break
			}
			ids = append(ids, s.ID)
		}
		if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
			t.Fatalf("pass %d yielded %v", p, ids)
		}
		// Next after exhaustion keeps returning false.
		if _, ok := it.Next(); ok {
			t.Fatal("Next after exhaustion returned ok")
		}
	}
}

func TestResetPasses(t *testing.T) {
	r := NewSliceRepo(inst())
	r.Begin()
	r.Begin()
	r.ResetPasses()
	if r.Passes() != 0 {
		t.Fatalf("Passes after reset = %d", r.Passes())
	}
}

func TestTrackerGrowShrinkPeak(t *testing.T) {
	tr := NewTracker()
	tr.Grow(10)
	tr.Grow(5)
	if tr.Current() != 15 || tr.Peak() != 15 {
		t.Fatalf("cur=%d peak=%d", tr.Current(), tr.Peak())
	}
	tr.Shrink(12)
	if tr.Current() != 3 || tr.Peak() != 15 {
		t.Fatalf("cur=%d peak=%d after shrink", tr.Current(), tr.Peak())
	}
	tr.Grow(4)
	if tr.Peak() != 15 {
		t.Fatalf("peak should stay 15, got %d", tr.Peak())
	}
	tr.FreeAll()
	if tr.Current() != 0 || tr.Peak() != 15 {
		t.Fatalf("FreeAll: cur=%d peak=%d", tr.Current(), tr.Peak())
	}
}

func TestTrackerPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative grow":   func() { NewTracker().Grow(-1) },
		"negative shrink": func() { NewTracker().Shrink(-1) },
		"underflow":       func() { NewTracker().Shrink(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTrackerMax(t *testing.T) {
	a, b := NewTracker(), NewTracker()
	a.Grow(5)
	b.Grow(9)
	a.Max(b)
	if a.Peak() != 9 {
		t.Fatalf("Max: peak=%d, want 9", a.Peak())
	}
	b2 := NewTracker()
	b2.Grow(1)
	a.Max(b2)
	if a.Peak() != 9 {
		t.Fatalf("Max with smaller peak changed peak to %d", a.Peak())
	}
}

func TestWordCharges(t *testing.T) {
	if WordsForElems(0) != 0 || WordsForElems(1) != 1 || WordsForElems(2) != 1 || WordsForElems(3) != 2 {
		t.Fatal("WordsForElems wrong")
	}
	if WordsForBitset(0) != 0 || WordsForBitset(1) != 1 || WordsForBitset(64) != 1 || WordsForBitset(65) != 2 {
		t.Fatal("WordsForBitset wrong")
	}
	if WordsForIDs(7) != 7 {
		t.Fatal("WordsForIDs wrong")
	}
}

func TestConcurrentReadersIndependent(t *testing.T) {
	// Two interleaved passes must not share cursor state (the "parallel
	// guesses" of iterSetCover rely on this when they share a physical scan).
	r := NewSliceRepo(inst())
	a, b := r.Begin(), r.Begin()
	sa, _ := a.Next()
	sb, _ := b.Next()
	if sa.ID != 0 || sb.ID != 0 {
		t.Fatal("each reader should start at set 0")
	}
	sa2, _ := a.Next()
	if sa2.ID != 1 {
		t.Fatal("reader a should advance independently")
	}
	sb2, _ := b.Next()
	if sb2.ID != 1 {
		t.Fatal("reader b should advance independently")
	}
	if r.Passes() != 2 {
		t.Fatalf("Passes = %d, want 2", r.Passes())
	}
}
