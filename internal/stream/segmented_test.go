package stream

import (
	"errors"
	"testing"

	"repro/internal/setcover"
)

// segmentedRepos builds both always-segmentable repositories over the same
// 10-set family.
func segmentedRepos() map[string]Repository {
	in := &setcover.Instance{N: 16}
	for i := 0; i < 10; i++ {
		in.Sets = append(in.Sets, setcover.Set{Elems: []setcover.Elem{
			int32(i), int32((i + 3) % 16),
		}})
	}
	in.Normalize()
	return map[string]Repository{
		"slice": NewSliceRepo(in),
		"func": NewFuncRepo(16, 10, func(id int) setcover.Set {
			s := &setcover.Instance{N: 16, Sets: []setcover.Set{{Elems: []setcover.Elem{
				int32(id), int32((id + 3) % 16),
			}}}}
			s.Normalize()
			return s.Sets[0]
		}),
	}
}

// BeginSegmented must count exactly one pass and its Segment readers must
// reproduce, chunk by chunk, exactly the stream Begin yields.
func TestBeginSegmentedYieldsTheStreamInChunks(t *testing.T) {
	for name, r := range segmentedRepos() {
		sr, ok := r.(SegmentedRepository)
		if !ok {
			t.Fatalf("%s: repository does not implement SegmentedRepository", name)
		}
		src, ok := sr.BeginSegmented()
		if !ok {
			t.Fatalf("%s: BeginSegmented not available", name)
		}
		if r.Passes() != 1 {
			t.Fatalf("%s: BeginSegmented counted %d passes, want 1", name, r.Passes())
		}
		var ids []int
		for _, bounds := range [][2]int{{0, 3}, {3, 4}, {4, 10}, {10, 10}} {
			it := src.Segment(bounds[0], bounds[1])
			for {
				s, ok := it.Next()
				if !ok {
					break
				}
				ids = append(ids, s.ID)
			}
		}
		if len(ids) != 10 {
			t.Fatalf("%s: segmented pass yielded %d of 10 sets", name, len(ids))
		}
		for i, id := range ids {
			if id != i {
				t.Fatalf("%s: position %d carries set %d", name, i, id)
			}
		}
		if r.Passes() != 1 {
			t.Fatalf("%s: Segment calls moved the pass counter to %d", name, r.Passes())
		}
	}
}

// Segment readers must implement the BatchReader fast path and stop at their
// end bound, not at the end of the family.
func TestSegmentReadersRespectBounds(t *testing.T) {
	for name, r := range segmentedRepos() {
		src, _ := r.(SegmentedRepository).BeginSegmented()
		it := src.Segment(2, 5)
		br, ok := it.(BatchReader)
		if !ok {
			t.Fatalf("%s: segment reader does not implement BatchReader", name)
		}
		buf := make([]setcover.Set, 0, 8) // larger than the segment
		k := br.NextBatch(buf)
		if k != 3 {
			t.Fatalf("%s: NextBatch returned %d sets, want 3", name, k)
		}
		for i, s := range buf[:k] {
			if s.ID != 2+i {
				t.Fatalf("%s: batch position %d carries set %d", name, i, s.ID)
			}
		}
		if br.NextBatch(buf) != 0 {
			t.Fatalf("%s: exhausted segment yielded more sets", name)
		}
		if _, ok := it.Next(); ok {
			t.Fatalf("%s: exhausted segment Next returned ok", name)
		}
	}
}

// ReaderErr must report nil for readers that cannot fail and pass through the
// error of readers that do.
func TestReaderErr(t *testing.T) {
	if err := ReaderErr(&sliceReader{}); err != nil {
		t.Fatalf("sliceReader reported %v", err)
	}
	want := errors.New("boom")
	if err := ReaderErr(failingReader{err: want}); !errors.Is(err, want) {
		t.Fatalf("ReaderErr = %v, want %v", err, want)
	}
}

type failingReader struct{ err error }

func (f failingReader) Next() (setcover.Set, bool) { return setcover.Set{}, false }
func (f failingReader) Err() error                 { return f.err }
