// Package core implements iterSetCover, the paper's main contribution
// (Figure 1.3, Theorem 2.8): a streaming SetCover algorithm that makes 2/δ
// passes, uses Õ(m·n^δ) space, and returns an O(ρ/δ)-approximate cover with
// high probability.
//
// Structure of the algorithm (Section 2.1):
//
//   - Guess the optimal cover size k up to a factor 2 by running all guesses
//     k ∈ {2^i | 0 ≤ i ≤ log n} "in parallel": in this implementation every
//     guess consumes the same physical pass, so the pass count stays 2/δ
//     while space multiplies by the O(log n) live guesses — exactly the
//     paper's accounting (Lemma 2.1).
//
//   - Each of the 1/δ iterations makes two passes. Pass one draws a uniform
//     sample S of the uncovered elements of size c·ρ·k·n^δ·log m·log n
//     (Lemma 2.5's relative (p, ε)-approximation bound) and scans the
//     repository: a set covering ≥ |S|/k of the still-uncovered sample (the
//     "Size Test") is heavy and enters the solution immediately; a small set
//     has its projection onto the sample stored explicitly — at most |S|/k
//     indices per set, which is where the m·n^δ space term comes from
//     (Lemma 2.2). An offline solver then covers the sampled leftovers from
//     the stored projections. Pass two recomputes the uncovered elements.
//
//   - Because S is a relative (p, ε)-approximation of the space of possible
//     residuals (Lemma 2.6), each iteration shrinks the uncovered set by a
//     factor n^δ while adding only O(ρk) sets, so 1/δ iterations finish the
//     cover with O(ρk/δ) sets total (Lemma 2.7).
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/offline"
	"repro/internal/sample"
	"repro/internal/setcover"
	"repro/internal/stream"
)

// AlgorithmName identifies iterSetCover in Stats reports.
const AlgorithmName = "iterSetCover"

// ErrNoCover is returned when no parallel guess produced a complete cover
// (the instance is infeasible, or sampling failed — the paper's "with high
// probability" event did not occur).
var ErrNoCover = errors.New("core: no guess produced a complete cover")

// SampleSizer chooses the per-iteration sample size for a guess k on a
// stream with n elements and m sets, of which uncovered remain. The returned
// size is clamped to [1, uncovered] by the algorithm.
type SampleSizer func(k, n, m, uncovered int) int

// PaperSizer returns the sample size of Figure 1.3,
// c·ρ·k·n^δ·log₂m·log₂n, with rho the offline solver's guarantee.
func PaperSizer(c, rho, delta float64) SampleSizer {
	return func(k, n, m, uncovered int) int {
		return sample.IterSampleSize(c, rho, k, n, m, delta)
	}
}

// PracticalSizer returns scale·k·n^δ without the polylog factors. The
// asymptotic space shape m·n^δ is preserved (that is what experiments
// measure) while constants stay laptop-sized. This is the default used by
// the experiment harness; the paper formula is available via PaperSizer.
func PracticalSizer(scale, delta float64) SampleSizer {
	return func(k, n, m, uncovered int) int {
		s := scale * float64(k) * math.Pow(float64(n), delta)
		if s < 1 {
			return 1
		}
		return int(math.Ceil(s))
	}
}

// Options configures IterSetCover. The zero value is not usable; call
// DefaultOptions for a sensible starting point.
type Options struct {
	// Delta is the paper's δ ∈ (0, 1]: 2/δ passes, Õ(m·n^δ) space.
	Delta float64
	// Offline is algOfflineSC. Defaults to offline.Greedy{}.
	Offline offline.Solver
	// Sizer picks the per-iteration sample size. Defaults to
	// PracticalSizer(1, Delta).
	Sizer SampleSizer
	// Seed drives all randomness; runs are deterministic given Seed.
	Seed int64

	// KMin/KMax optionally restrict the parallel guesses to [KMin, KMax]
	// (both rounded to powers of two). Zero values mean the full range
	// {1, ..., 2^ceil(log n)}.
	KMin, KMax int

	// DisableSizeTest is an ablation switch (experiment E9): heavy sets are
	// no longer added eagerly, every set's projection is stored. Space grows
	// toward m·|S| and the approximation argument of Lemma 2.3 is lost.
	DisableSizeTest bool

	// AdaptiveIterations is an ablation switch (experiment E10): instead of
	// stopping after ceil(1/δ) iterations as the paper prescribes, keep
	// iterating until every guess either finishes or MaxIterations is hit.
	AdaptiveIterations bool
	// MaxIterations caps iterations when AdaptiveIterations is set.
	// Zero means 4·log₂n + 8.
	MaxIterations int

	// PartialEps switches to the ε-Partial Set Cover problem (the [ER14] /
	// [CW16] generalization discussed in Section 1): a guess finishes once
	// at most PartialEps·n elements remain uncovered. Zero means full cover.
	PartialEps float64

	// FinalPatch enables the Section 4.2 optimization transplanted to the
	// set-system algorithm: if after the 1/δ iterations no guess finished,
	// one extra pass covers each remaining element with an arbitrary set
	// containing it. A correct guess k leaves few leftovers, so the patch
	// adds one pass and O(leftovers) sets, rescuing runs whose sampling
	// undershot. When some guess already finished, the pass is skipped.
	FinalPatch bool

	// Engine configures the shared pass executor (internal/engine) that
	// fans every physical pass out to the parallel guesses: Workers
	// goroutines (default GOMAXPROCS) consuming batches of BatchSize sets.
	// Results, pass counts, and space accounting are identical for every
	// setting — each guess owns disjoint state and sees the stream in
	// order — so this is purely a wall-clock knob.
	Engine engine.Options
}

// DefaultOptions returns options matching Theorem 2.8 with δ = 1/2 and the
// greedy offline solver.
func DefaultOptions() Options {
	return Options{Delta: 0.5, Offline: offline.Greedy{}, Seed: 1}
}

// Result extends Stats with per-run diagnostics useful in experiments.
type Result struct {
	setcover.Stats
	// BestK is the guess k whose run produced the reported cover.
	BestK int
	// Iterations is the number of two-pass iterations executed.
	Iterations int
	// StoredProjectionWordsPeak is the peak space used by stored projections
	// alone (the m·n^δ term of Lemma 2.2), for space-decomposition tables.
	StoredProjectionWordsPeak int64
	// CoveredFraction is the fraction of U covered by the reported solution
	// (1 for full covers; ≥ 1-PartialEps for partial runs).
	CoveredFraction float64
}

// failPass closes out a Result whose physical pass failed mid-stream
// (truncated or corrupt repository): every guess saw only a prefix of F, so
// no cover can be reported — the run fails loudly with the resources it
// consumed, never with a plausible-looking partial answer.
func (res Result) failPass(repo stream.Repository, tracker *stream.Tracker, err error) (Result, error) {
	res.Passes = repo.Passes()
	res.SpaceWords = tracker.Peak()
	return res, fmt.Errorf("core: %w", err)
}

// guessRun is the state of one parallel guess of k.
type guessRun struct {
	k         int
	uncovered *bitset.Bitset // over U
	sol       []int          // picked set IDs, across iterations
	done      bool           // uncovered is empty
	failed    bool           // gave up (offline solve failed)

	// Per-iteration state (rebuilt each iteration).
	sampleSize int
	left       *bitset.Bitset    // L: uncovered sampled elements
	projElems  [][]setcover.Elem // stored projections r∩L
	projIDs    []int             // original stream IDs of stored projections
	projWs     []float64         // stored weights (weighted repos only; nil otherwise)
	newPicks   *bitset.Bitset    // over the m stream IDs: sets picked this iteration (heavy + offline)
	iterWords  int64             // space charged for this iteration's state
}

// IterSetCover runs the Figure 1.3 algorithm over the repository.
func IterSetCover(repo stream.Repository, opts Options) (Result, error) {
	n, m := repo.UniverseSize(), repo.NumSets()
	if opts.Delta <= 0 || opts.Delta > 1 {
		return Result{}, fmt.Errorf("core: delta %v out of (0,1]", opts.Delta)
	}
	if opts.PartialEps < 0 || opts.PartialEps >= 1 {
		return Result{}, fmt.Errorf("core: partial eps %v out of [0,1)", opts.PartialEps)
	}
	if opts.Offline == nil {
		opts.Offline = offline.Greedy{}
	}
	if opts.Sizer == nil {
		opts.Sizer = PracticalSizer(1, opts.Delta)
	}
	tracker := stream.NewTracker()
	res := Result{Stats: setcover.Stats{Algorithm: AlgorithmName, Extra: opts.Delta}}
	// Allowed leftovers for the ε-partial variant (0 for full covers).
	targetUncovered := int(opts.PartialEps * float64(n))

	if n == 0 {
		res.Valid = true
		res.CoveredFraction = 1
		return res, nil
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	runs := makeRuns(n, opts, tracker)
	eng := engine.New(opts.Engine)

	// Weighted repositories generalize the Size Test to cost-effectiveness
	// (see guessRun.observe) and hand per-set costs to the offline solver.
	// weightOf stays nil on unweighted repositories so the hot path — and
	// every number the unweighted algorithm reports — is untouched.
	var weightOf func(int) float64
	if w, ok := repo.(stream.Weighted); ok && w.HasWeights() {
		weightOf = w.Weight
	}

	iterations := int(math.Ceil(1 / opts.Delta))
	maxIter := iterations
	if opts.AdaptiveIterations {
		maxIter = opts.MaxIterations
		if maxIter <= 0 {
			maxIter = 4*int(math.Ceil(math.Log2(float64(n+1)))) + 8
		}
	}

	var projPeak int64
	for iter := 0; iter < maxIter; iter++ {
		if allSettled(runs) {
			break
		}
		res.Iterations++

		// Draw this iteration's samples and reset per-iteration state.
		for _, g := range runs {
			if g.done || g.failed {
				continue
			}
			g.beginIteration(rng, n, m, opts, tracker)
		}

		// Pass 1: size test + projection storage. One engine run = one
		// physical pass shared by all live guesses (Lemma 2.1); each guess
		// is its own observer, so the engine runs them on parallel workers
		// over disjoint state.
		if err := eng.Run(repo, liveObservers(runs, func(g *guessRun) engine.Observer {
			return &sizeTestObserver{g: g, opts: &opts, weight: weightOf, tracker: tracker}
		})...); err != nil {
			return res.failPass(repo, tracker, err)
		}
		var iterProjWords int64
		for _, g := range runs {
			if !g.done && !g.failed {
				iterProjWords += stream.WordsForElems(totalProjElems(g))
			}
		}
		if iterProjWords > projPeak {
			projPeak = iterProjWords
		}

		// Offline solve per guess (no pass over F — Lemma 2.1).
		for _, g := range runs {
			if g.done || g.failed {
				continue
			}
			g.solveOffline(opts, tracker)
		}

		// Pass 2: recompute uncovered elements, shared by all guesses.
		if err := eng.Run(repo, liveObservers(runs, func(g *guessRun) engine.Observer {
			return &recomputeObserver{g: g}
		})...); err != nil {
			return res.failPass(repo, tracker, err)
		}

		// Close the iteration: release per-iteration memory (Lemma 2.2:
		// earlier iterations' space is not kept). Guesses that failed in
		// solveOffline this iteration still hold their iteration's charge
		// (iterWords > 0) and must release it too; guesses settled in
		// earlier iterations were already closed and hold nothing.
		for _, g := range runs {
			if g.iterWords == 0 {
				continue
			}
			if !g.done && !g.failed && g.uncovered.Count() <= targetUncovered {
				g.done = true
			}
			g.endIteration(tracker)
		}
	}

	// Optional final patch pass (Section 4.2's idea): cover each remaining
	// element with an arbitrary set containing it. One shared pass serves
	// every unfinished guess; it only runs when no guess finished on its
	// own (rescue semantics — the pass budget stays 2/δ otherwise).
	if opts.FinalPatch && !anyDone(runs) {
		if err := eng.Run(repo, liveObservers(runs, func(g *guessRun) engine.Observer {
			return &patchObserver{g: g, target: targetUncovered, tracker: tracker}
		})...); err != nil {
			return res.failPass(repo, tracker, err)
		}
	}

	// Return the best valid solution over all parallel executions.
	best := -1
	for i, g := range runs {
		if g.done && (best < 0 || len(g.sol) < len(runs[best].sol)) {
			best = i
		}
	}
	res.Passes = repo.Passes()
	res.SpaceWords = tracker.Peak()
	res.StoredProjectionWordsPeak = projPeak
	if best < 0 {
		return res, ErrNoCover
	}
	res.Cover = append([]int(nil), runs[best].sol...)
	res.Valid = true
	res.BestK = runs[best].k
	res.CoveredFraction = 1 - float64(runs[best].uncovered.Count())/float64(n)
	return res, nil
}

// liveObservers wraps every guess that is still running (neither done nor
// failed) as an engine observer. The done/failed flags only flip between
// passes (observe never touches them; solveOffline and the iteration close
// run outside the engine), so snapshotting the live set at pass start is
// equivalent to the seed's per-set skip check — except for the final patch
// pass, whose observer re-checks done as it flips mid-pass.
func liveObservers(runs []*guessRun, mk func(*guessRun) engine.Observer) []engine.Observer {
	obs := make([]engine.Observer, 0, len(runs))
	for _, g := range runs {
		if !g.done && !g.failed {
			obs = append(obs, mk(g))
		}
	}
	return obs
}

// sizeTestObserver runs pass 1 of an iteration (Figure 1.3's Size Test +
// projection storage) for one guess. weight is nil on unweighted
// repositories.
type sizeTestObserver struct {
	g       *guessRun
	opts    *Options
	weight  func(int) float64
	tracker *stream.Tracker
}

func (o *sizeTestObserver) Observe(batch []setcover.Set) {
	for _, s := range batch {
		o.g.observe(s, *o.opts, o.weight, o.tracker)
	}
}

// recomputeObserver runs pass 2 of an iteration: subtract everything this
// iteration's picks cover from the guess's uncovered set.
type recomputeObserver struct {
	g *guessRun
}

func (o *recomputeObserver) Observe(batch []setcover.Set) {
	for _, s := range batch {
		if o.g.newPicks.Test(s.ID) {
			o.g.uncovered.SubtractSlice(s.Elems)
		}
	}
}

// patchObserver runs the optional final patch pass (Section 4.2's idea):
// cover each remaining element with an arbitrary set containing it, until
// the guess reaches its target.
type patchObserver struct {
	g       *guessRun
	target  int
	tracker *stream.Tracker
}

func (o *patchObserver) Observe(batch []setcover.Set) {
	g := o.g
	for _, s := range batch {
		if g.done {
			return
		}
		if g.uncovered.IntersectsSlice(s.Elems) {
			g.sol = append(g.sol, s.ID)
			o.tracker.Grow(1)
			g.uncovered.SubtractSlice(s.Elems)
			if g.uncovered.Count() <= o.target {
				g.done = true
			}
		}
	}
}

func makeRuns(n int, opts Options, tracker *stream.Tracker) []*guessRun {
	kMin, kMax := opts.KMin, opts.KMax
	if kMin <= 0 {
		kMin = 1
	}
	if kMax <= 0 {
		kMax = 1 << uint(math.Ceil(math.Log2(float64(n))))
		if kMax < 1 {
			kMax = 1
		}
	}
	var runs []*guessRun
	for k := 1; k <= kMax; k *= 2 {
		if k < kMin {
			continue
		}
		g := &guessRun{k: k, uncovered: bitset.New(n)}
		g.uncovered.Fill()
		// Persistent state: the per-guess mutable copy of the uncovered set.
		tracker.Grow(stream.WordsForBitset(n))
		runs = append(runs, g)
	}
	return runs
}

func allSettled(runs []*guessRun) bool {
	for _, g := range runs {
		if !g.done && !g.failed {
			return false
		}
	}
	return true
}

func anyDone(runs []*guessRun) bool {
	for _, g := range runs {
		if g.done {
			return true
		}
	}
	return false
}

func totalProjElems(g *guessRun) int {
	t := 0
	for _, p := range g.projElems {
		t += len(p)
	}
	return t
}

// beginIteration draws S, sets L ← S, and clears the projection store.
func (g *guessRun) beginIteration(rng *rand.Rand, n, m int, opts Options, tracker *stream.Tracker) {
	g.sampleSize = opts.Sizer(g.k, n, m, g.uncovered.Count())
	if g.sampleSize < 1 {
		g.sampleSize = 1
	}
	g.left = sample.UniformFromBitset(rng, g.uncovered, g.sampleSize)
	g.sampleSize = g.left.Count() // clamp when uncovered < requested
	g.projElems = g.projElems[:0]
	g.projIDs = g.projIDs[:0]
	g.projWs = g.projWs[:0]
	// newPicks is a bitset over the m stream IDs rather than a map: pass 2
	// probes it once per streamed set, and a word-indexed bit test beats a
	// map lookup in that loop. The space METER is unchanged — it still
	// charges one word per picked ID (the abstract cost of remembering the
	// pick), so SpaceWords stays byte-identical to the map representation;
	// the bitset is a constant-factor runtime choice, reused across
	// iterations.
	if g.newPicks == nil || g.newPicks.Len() != m {
		g.newPicks = bitset.New(m)
	} else {
		g.newPicks.Reset()
	}
	// Charge the leftover bitset L (the sample is represented by it).
	g.iterWords = stream.WordsForBitset(n)
	tracker.Grow(g.iterWords)
}

// observe processes one streamed set during pass 1 (the Size Test). weight
// is nil on unweighted repositories; when present, the Size Test generalizes
// from coverage to cost-effectiveness — a set is heavy when it covers at
// least (|S|/k)·cost(r) sampled leftovers, i.e. when its coverage per unit
// cost clears the same |S|/k bar the unweighted test sets. A unit-weight
// vector multiplies the threshold by exactly 1.0, so the weighted path is
// byte-identical to the unweighted one on all-ones weights.
func (g *guessRun) observe(s setcover.Set, opts Options, weight func(int) float64, tracker *stream.Tracker) {
	inL := g.left.IntersectionWithSlice(s.Elems)
	if inL == 0 {
		return
	}
	threshold := float64(g.sampleSize) / float64(g.k)
	if weight != nil {
		threshold *= weight(s.ID)
	}
	if !opts.DisableSizeTest && float64(inL) >= threshold {
		// Heavy: take it now, no storage needed beyond its ID.
		g.sol = append(g.sol, s.ID)
		g.newPicks.Set(s.ID)
		g.left.SubtractSlice(s.Elems)
		w := int64(2) // one ID in sol, one in newPicks
		g.iterWords += w
		tracker.Grow(w)
		return
	}
	// Small: store the projection r∩L explicitly (Figure 1.3).
	proj := make([]setcover.Elem, 0, inL)
	for _, e := range s.Elems {
		if g.left.Test(int(e)) {
			proj = append(proj, e)
		}
	}
	g.projElems = append(g.projElems, proj)
	g.projIDs = append(g.projIDs, s.ID)
	w := stream.WordsForElems(len(proj)) + 1 // projection + its stream ID
	if weight != nil {
		// The stored copy of the set's cost is working memory like the
		// projection itself: one word. Unweighted runs never pay it.
		g.projWs = append(g.projWs, weight(s.ID))
		w++
	}
	g.iterWords += w
	tracker.Grow(w)
}

// solveOffline covers the sampled leftovers L from the stored projections
// with algOfflineSC and merges the result into the solution.
func (g *guessRun) solveOffline(opts Options, tracker *stream.Tracker) {
	if g.left.Empty() {
		return
	}
	// Build the projected instance over the elements of L.
	newIdx := make(map[setcover.Elem]setcover.Elem, g.left.Count())
	next := setcover.Elem(0)
	g.left.ForEach(func(i int) bool {
		newIdx[setcover.Elem(i)] = next
		next++
		return true
	})
	sub := &setcover.Instance{N: int(next)}
	var origIDs []int
	for i, proj := range g.projElems {
		var elems []setcover.Elem
		for _, e := range proj {
			if ni, ok := newIdx[e]; ok {
				elems = append(elems, ni)
			}
		}
		if len(elems) > 0 {
			sub.Sets = append(sub.Sets, setcover.Set{ID: len(sub.Sets), Elems: elems})
			origIDs = append(origIDs, g.projIDs[i])
			if g.projWs != nil {
				sub.Weights = append(sub.Weights, g.projWs[i])
			}
		}
	}
	sub.Normalize()
	// Charge the element remap table (the projections are already charged).
	w := int64(len(newIdx))
	g.iterWords += w
	tracker.Grow(w)

	cover, err := opts.Offline.Solve(sub)
	if err != nil {
		// Sample contains an element no stored set covers: only possible if
		// the instance itself cannot cover it. This guess cannot finish.
		g.failed = true
		return
	}
	for _, sid := range cover {
		orig := origIDs[sid]
		if !g.newPicks.Test(orig) {
			g.sol = append(g.sol, orig)
			g.newPicks.Set(orig)
			w := int64(2)
			g.iterWords += w
			tracker.Grow(w)
		}
	}
}

// endIteration releases all per-iteration memory.
func (g *guessRun) endIteration(tracker *stream.Tracker) {
	tracker.Shrink(g.iterWords)
	g.iterWords = 0
	g.left = nil
	g.projElems = g.projElems[:0]
	g.projIDs = g.projIDs[:0]
	g.projWs = g.projWs[:0]
	if g.newPicks != nil {
		g.newPicks.Reset() // keep the allocation; next iteration reuses it
	}
}
