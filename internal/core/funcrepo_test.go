package core

import (
	"testing"

	"repro/internal/setcover"
	"repro/internal/stream"
)

// IterSetCover must work against any Repository — here a generate-on-the-fly
// source with no backing slice, which also proves the algorithm touches the
// stream only through the model's interface.
func TestIterSetCoverOnFuncRepo(t *testing.T) {
	const n = 512
	const blockSize = 32
	const k = n / blockSize // 16 planted blocks
	const noise = 400
	// Sets 0..k-1 are the planted partition; the rest are deterministic
	// pseudo-random subsets of size <= blockSize.
	repo := stream.NewFuncRepo(n, k+noise, func(id int) setcover.Set {
		var es []setcover.Elem
		if id < k {
			for e := id * blockSize; e < (id+1)*blockSize; e++ {
				es = append(es, setcover.Elem(e))
			}
			return setcover.Set{Elems: es}
		}
		// Deterministic noise: a strided slice of the universe.
		x := uint64(id)*2654435761 + 12345
		for i := 0; i < blockSize/2; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			es = append(es, setcover.Elem(x%uint64(n)))
		}
		s := setcover.Set{Elems: es}
		// Sort-unique inline (FuncRepo contract).
		norm := &setcover.Instance{N: n, Sets: []setcover.Set{s}}
		norm.Normalize()
		return norm.Sets[0]
	})

	res, err := IterSetCover(repo, Options{Delta: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Verify the cover by regenerating the chosen sets.
	covered := make([]bool, n)
	it := repo.Begin()
	chosen := make(map[int]bool, len(res.Cover))
	for _, id := range res.Cover {
		chosen[id] = true
	}
	for {
		s, ok := it.Next()
		if !ok {
			break
		}
		if chosen[s.ID] {
			for _, e := range s.Elems {
				covered[e] = true
			}
		}
	}
	for e, c := range covered {
		if !c {
			t.Fatalf("element %d uncovered", e)
		}
	}
	// Max set size is blockSize, so OPT = k; the cover should be O(rho) * k.
	if len(res.Cover) > 8*k {
		t.Fatalf("cover %d too large vs OPT %d", len(res.Cover), k)
	}
}
