package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/offline"
	"repro/internal/setcover"
	"repro/internal/stream"
)

func TestPartialEpsCoversFraction(t *testing.T) {
	in, _, _, err := gen.Planted(gen.PlantedConfig{N: 800, M: 1600, K: 10, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	full, err := IterSetCover(stream.NewSliceRepo(in), Options{Delta: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.02, 0.1, 0.3} {
		res, err := IterSetCover(stream.NewSliceRepo(in), Options{Delta: 0.5, Seed: 3, PartialEps: eps})
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if !in.IsPartialCover(res.Cover, eps) {
			t.Fatalf("eps=%v: coverage %.3f below 1-eps", eps, in.CoverageFraction(res.Cover))
		}
		if res.CoveredFraction < 1-eps-1e-9 {
			t.Fatalf("eps=%v: reported fraction %.3f below 1-eps", eps, res.CoveredFraction)
		}
		if len(res.Cover) > len(full.Cover) {
			t.Fatalf("eps=%v: partial cover (%d) larger than full (%d)", eps, len(res.Cover), len(full.Cover))
		}
	}
}

func TestPartialEpsValidation(t *testing.T) {
	in, _, _, _ := gen.Planted(gen.PlantedConfig{N: 32, M: 32, K: 2, Seed: 1})
	for _, eps := range []float64{-0.5, 1, 2} {
		if _, err := IterSetCover(stream.NewSliceRepo(in), Options{Delta: 0.5, PartialEps: eps}); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
}

func TestFinalPatchRescuesUndersampledRun(t *testing.T) {
	// With a tiny sample and the paper's fixed 1/δ iterations, the run
	// normally fails; the Section 4.2-style final patch pass rescues it at
	// the cost of one extra pass and O(leftovers) extra sets.
	in, _, _, err := gen.Planted(gen.PlantedConfig{N: 1024, M: 1024, K: 4, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	tiny := func(k, n, m, uncovered int) int { return 6 }

	_, errNoPatch := IterSetCover(stream.NewSliceRepo(in), Options{
		Delta: 0.5, Offline: offline.Greedy{}, Seed: 5, Sizer: tiny, KMin: 4, KMax: 4,
	})
	if errNoPatch == nil {
		t.Skip("undersampled run unexpectedly converged; patch not exercised")
	}

	res, err := IterSetCover(stream.NewSliceRepo(in), Options{
		Delta: 0.5, Offline: offline.Greedy{}, Seed: 5, Sizer: tiny, KMin: 4, KMax: 4,
		FinalPatch: true,
	})
	if err != nil {
		t.Fatalf("final patch should rescue the run: %v", err)
	}
	if !in.IsCover(res.Cover) {
		t.Fatal("patched result is not a cover")
	}
	// 2 iterations x 2 passes + 1 patch pass.
	if res.Passes != 5 {
		t.Fatalf("passes = %d, want 5 (4 + patch)", res.Passes)
	}
}

func TestFinalPatchNoOpWhenConverged(t *testing.T) {
	in, _, _, err := gen.Planted(gen.PlantedConfig{N: 256, M: 512, K: 4, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	with, err := IterSetCover(stream.NewSliceRepo(in), Options{Delta: 0.5, Seed: 7, FinalPatch: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := IterSetCover(stream.NewSliceRepo(in), Options{Delta: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Some guess converges on this instance, so the rescue pass never runs.
	if with.Passes != without.Passes {
		t.Fatalf("patch added a pass on a converged run: %d vs %d", with.Passes, without.Passes)
	}
	if len(with.Cover) != len(without.Cover) {
		t.Fatalf("patch changed the result on a converged run: %d vs %d", len(with.Cover), len(without.Cover))
	}
}

func TestCoveredFractionReported(t *testing.T) {
	in, _, _, err := gen.Planted(gen.PlantedConfig{N: 200, M: 400, K: 4, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	res, err := IterSetCover(stream.NewSliceRepo(in), Options{Delta: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoveredFraction != 1 {
		t.Fatalf("full cover should report fraction 1, got %v", res.CoveredFraction)
	}
	empty := stream.NewSliceRepo(&setcover.Instance{N: 0})
	r0, err := IterSetCover(empty, Options{Delta: 0.5})
	if err != nil || r0.CoveredFraction != 1 {
		t.Fatalf("empty universe: fraction %v err %v", r0.CoveredFraction, err)
	}
}
