package core

import (
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/setcover"
	"repro/internal/stream"
)

// The engine's determinism contract, end to end: for a fixed seed,
// IterSetCover at Workers = GOMAXPROCS (and other worker counts) must be
// byte-identical to Workers = 1 — same Cover, same Passes, same SpaceWords.
// Each parallel guess owns disjoint state and sees the stream in order, so
// worker count is purely a wall-clock knob (ISSUE: "parallel guesses become
// actual goroutines" without changing the paper's accounting).
func TestEngineWorkersIdenticalResults(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"delta=0.5", Options{Delta: 0.5, Seed: 7}},
		{"delta=0.25", Options{Delta: 0.25, Seed: 11}},
		{"final-patch", Options{Delta: 0.5, Seed: 13, FinalPatch: true}},
		{"partial", Options{Delta: 0.5, Seed: 17, PartialEps: 0.1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers, batch int) Result {
				repo, _ := plantedRepo(t, 512, 1024, 8, 51)
				opts := tc.opts
				opts.Engine = engine.Options{Workers: workers, BatchSize: batch}
				res, err := IterSetCover(repo, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return res
			}
			want := run(1, 1)
			for _, cfg := range [][2]int{{runtime.GOMAXPROCS(0), 0}, {3, 5}, {16, 1024}} {
				got := run(cfg[0], cfg[1])
				if !reflect.DeepEqual(got.Cover, want.Cover) {
					t.Errorf("workers=%d/batch=%d: cover %v != sequential %v",
						cfg[0], cfg[1], got.Cover, want.Cover)
				}
				if got.Passes != want.Passes {
					t.Errorf("workers=%d: passes %d != %d", cfg[0], got.Passes, want.Passes)
				}
				if got.SpaceWords != want.SpaceWords {
					t.Errorf("workers=%d: space %d != %d", cfg[0], got.SpaceWords, want.SpaceWords)
				}
				if got.BestK != want.BestK || got.Iterations != want.Iterations {
					t.Errorf("workers=%d: BestK/Iterations %d/%d != %d/%d",
						cfg[0], got.BestK, got.Iterations, want.BestK, want.Iterations)
				}
			}
		})
	}
}

// Pass-sharing invariant under the parallel engine: with Workers > 1 the
// pass count is still exactly 2·ceil(1/δ), plus one for FinalPatch when no
// guess finishes on its own. A size-1 sampler guarantees no guess can finish
// within the iteration budget (each iteration picks O(1) sets), so the
// budget is fully spent and the counts are exact, not just upper bounds.
func TestEnginePassBudgetExact(t *testing.T) {
	one := func(k, n, m, uncovered int) int { return 1 }
	for _, delta := range []float64{0.5, 0.25} {
		iters := int(math.Ceil(1 / delta))

		repo, _ := plantedRepo(t, 512, 1024, 8, 51)
		_, err := IterSetCover(repo, Options{
			Delta: delta, Seed: 1, Sizer: one,
			Engine: engine.Options{Workers: runtime.GOMAXPROCS(0)},
		})
		if !errors.Is(err, ErrNoCover) {
			t.Fatalf("delta=%v: size-1 sampler should not finish, got err=%v", delta, err)
		}
		if got, want := repo.Passes(), 2*iters; got != want {
			t.Fatalf("delta=%v: passes = %d, want exactly %d", delta, got, want)
		}

		// FinalPatch adds exactly one pass and rescues the run.
		repo, _ = plantedRepo(t, 512, 1024, 8, 51)
		res, err := IterSetCover(repo, Options{
			Delta: delta, Seed: 1, Sizer: one, FinalPatch: true,
			Engine: engine.Options{Workers: runtime.GOMAXPROCS(0)},
		})
		if err != nil {
			t.Fatalf("delta=%v with patch: %v", delta, err)
		}
		if got, want := res.Passes, 2*iters+1; got != want {
			t.Fatalf("delta=%v: patched passes = %d, want exactly %d", delta, got, want)
		}
		if !repo.Instance().IsCover(res.Cover) {
			t.Fatalf("delta=%v: patched result is not a cover", delta)
		}
	}
}

// The determinism contract also holds on the failure path: an infeasible
// instance (one element in no set) makes guesses fail in solveOffline, whose
// iteration memory must still be released (Lemma 2.2) and whose accounting
// must not depend on the worker count.
func TestEngineWorkersIdenticalOnInfeasible(t *testing.T) {
	mk := func() *stream.SliceRepo {
		in := &setcover.Instance{N: 64}
		for i := 0; i < 62; i++ {
			in.Sets = append(in.Sets, setcover.Set{Elems: []setcover.Elem{
				int32(i), int32((i + 1) % 62),
			}})
		}
		in.Normalize() // elements 62 and 63 are uncoverable
		return stream.NewSliceRepo(in)
	}
	run := func(workers int) Result {
		res, err := IterSetCover(mk(), Options{
			Delta: 0.25, Seed: 9,
			Engine: engine.Options{Workers: workers, BatchSize: 8},
		})
		if !errors.Is(err, ErrNoCover) {
			t.Fatalf("workers=%d: want ErrNoCover, got %v", workers, err)
		}
		return res
	}
	seq, par := run(1), run(8)
	if seq.Passes != par.Passes || seq.SpaceWords != par.SpaceWords {
		t.Fatalf("failure path diverged: passes %d/%d space %d/%d",
			seq.Passes, par.Passes, seq.SpaceWords, par.SpaceWords)
	}
}

// A FuncRepo (generate-on-the-fly, no backing slice) must work as an engine
// source at Workers > 1, and produce the same cover as Workers = 1: the
// engine's single reader goroutine is the only consumer of the pass, so the
// generator is never called concurrently.
func TestEngineFuncRepoSource(t *testing.T) {
	const n, blockSize = 256, 16
	const k = n / blockSize
	mk := func() *stream.FuncRepo {
		return stream.NewFuncRepo(n, k+100, func(id int) setcover.Set {
			var es []setcover.Elem
			if id < k {
				for e := id * blockSize; e < (id+1)*blockSize; e++ {
					es = append(es, setcover.Elem(e))
				}
			} else {
				for i := 0; i < blockSize; i++ {
					es = append(es, setcover.Elem((id*31+i*17)%n))
				}
			}
			s := &setcover.Instance{N: n, Sets: []setcover.Set{{Elems: es}}}
			s.Normalize()
			return s.Sets[0]
		})
	}
	run := func(workers int) Result {
		opts := Options{Delta: 0.5, Seed: 3, Engine: engine.Options{Workers: workers, BatchSize: 32}}
		res, err := IterSetCover(mk(), opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	seq, par := run(1), run(8)
	if !reflect.DeepEqual(seq.Cover, par.Cover) || seq.Passes != par.Passes || seq.SpaceWords != par.SpaceWords {
		t.Fatalf("FuncRepo: parallel run diverged: %v/%d/%d vs %v/%d/%d",
			par.Cover, par.Passes, par.SpaceWords, seq.Cover, seq.Passes, seq.SpaceWords)
	}
}
