package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/setcover"
	"repro/internal/stream"
)

// Lemma 2.1's accounting, explicitly: running all log n parallel guesses
// costs exactly the same number of physical passes as running a single
// guess — guesses share scans, they do not multiply them.
func TestParallelGuessesSharePasses(t *testing.T) {
	mk := func() *stream.SliceRepo {
		in, _, _, err := gen.Planted(gen.PlantedConfig{N: 512, M: 1024, K: 8, Seed: 51})
		if err != nil {
			t.Fatal(err)
		}
		return stream.NewSliceRepo(in)
	}
	single := mk()
	resSingle, err := IterSetCover(single, Options{Delta: 0.25, Seed: 1, KMin: 8, KMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	all := mk()
	resAll, err := IterSetCover(all, Options{Delta: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The full-guess run can only finish earlier (some guess covers sooner),
	// never later than the pinned run's pass budget.
	if resAll.Passes > 8 || resSingle.Passes > 8 {
		t.Fatalf("passes exceeded 2/δ: all=%d single=%d", resAll.Passes, resSingle.Passes)
	}
	// Space, by contrast, does multiply with the number of live guesses.
	if resAll.SpaceWords <= resSingle.SpaceWords {
		t.Fatalf("parallel guesses should cost more space: all=%d single=%d",
			resAll.SpaceWords, resSingle.SpaceWords)
	}
}

// Pass parity: every pass of iterSetCover drains the stream completely (the
// streaming model does not allow partial scans to be cheaper), which the
// SliceRepo cannot check — a counting wrapper can.
func TestPassesFullyDrained(t *testing.T) {
	in, _, _, err := gen.Planted(gen.PlantedConfig{N: 128, M: 256, K: 4, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	base := stream.NewSliceRepo(in)
	repo := &drainCheckRepo{SliceRepo: base, m: in.M()}
	if _, err := IterSetCover(repo, Options{Delta: 0.5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	repo.verify(t)
}

type drainCheckRepo struct {
	*stream.SliceRepo
	m       int
	readers []*drainCheckReader
}

func (r *drainCheckRepo) Begin() stream.Reader {
	inner := r.SliceRepo.Begin()
	dr := &drainCheckReader{inner: inner}
	r.readers = append(r.readers, dr)
	return dr
}

func (r *drainCheckRepo) verify(t *testing.T) {
	t.Helper()
	for i, dr := range r.readers {
		if dr.reads != r.m {
			t.Fatalf("pass %d read %d of %d sets — partial scan", i, dr.reads, r.m)
		}
	}
}

type drainCheckReader struct {
	inner stream.Reader
	reads int
}

func (d *drainCheckReader) Next() (setcover.Set, bool) {
	s, ok := d.inner.Next()
	if ok {
		d.reads++
	}
	return s, ok
}
