package core

import (
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/scdisk"
	"repro/internal/setcover"
	"repro/internal/stream"
)

// conformanceRepos builds the three storage backends over the same instance.
// Algorithms must be unable to tell them apart: covers, pass counts, and
// space charges have to be byte-identical, because the model's Repository is
// the only thing they are allowed to observe.
func conformanceRepos(t testing.TB, in *setcover.Instance) map[string]func() stream.Repository {
	t.Helper()
	path := filepath.Join(t.TempDir(), "conf.scb")
	if err := scdisk.WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	return map[string]func() stream.Repository{
		"slice": func() stream.Repository { return stream.NewSliceRepo(in) },
		"func": func() stream.Repository {
			return stream.NewFuncRepo(in.N, in.M(), func(id int) setcover.Set {
				es := make([]setcover.Elem, len(in.Sets[id].Elems))
				copy(es, in.Sets[id].Elems)
				return setcover.Set{ID: id, Elems: es}
			})
		},
		"disk": func() stream.Repository {
			d, err := scdisk.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return d
		},
	}
}

func conformanceInstances(t testing.TB) map[string]*setcover.Instance {
	t.Helper()
	planted, _, _, err := gen.Planted(gen.PlantedConfig{N: 400, M: 900, K: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	uniform := gen.Uniform(300, 600, 0.03, 17)
	return map[string]*setcover.Instance{"planted": planted, "uniform": uniform}
}

func sameStats(t *testing.T, label string, want, got setcover.Stats) {
	t.Helper()
	if got.Passes != want.Passes {
		t.Errorf("%s: passes %d, want %d", label, got.Passes, want.Passes)
	}
	if got.SpaceWords != want.SpaceWords {
		t.Errorf("%s: space %d, want %d", label, got.SpaceWords, want.SpaceWords)
	}
	if got.Valid != want.Valid {
		t.Errorf("%s: valid %v, want %v", label, got.Valid, want.Valid)
	}
	if len(got.Cover) != len(want.Cover) {
		t.Fatalf("%s: cover size %d, want %d", label, len(got.Cover), len(want.Cover))
	}
	for i := range want.Cover {
		if got.Cover[i] != want.Cover[i] {
			t.Fatalf("%s: cover[%d] = %d, want %d", label, i, got.Cover[i], want.Cover[i])
		}
	}
}

// IterSetCover must produce byte-identical covers, pass counts, and space
// charges on SliceRepo, FuncRepo, and DiskRepo, at one worker and at
// GOMAXPROCS workers.
func TestIterSetCoverBackendConformance(t *testing.T) {
	workersList := []int{1, runtime.GOMAXPROCS(0)}
	for instName, in := range conformanceInstances(t) {
		repos := conformanceRepos(t, in)
		for _, workers := range workersList {
			opts := Options{Delta: 0.5, Seed: 7, FinalPatch: true,
				Engine: engine.Options{Workers: workers}}
			ref, err := IterSetCover(stream.NewSliceRepo(in), opts)
			if err != nil {
				t.Fatal(err)
			}
			for backend, mk := range repos {
				label := fmt.Sprintf("%s/%s/workers=%d", instName, backend, workers)
				res, err := IterSetCover(mk(), opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				sameStats(t, label, ref.Stats, res.Stats)
				if res.BestK != ref.BestK || res.Iterations != ref.Iterations {
					t.Errorf("%s: bestK/iterations %d/%d, want %d/%d",
						label, res.BestK, res.Iterations, ref.BestK, ref.Iterations)
				}
				if res.StoredProjectionWordsPeak != ref.StoredProjectionWordsPeak {
					t.Errorf("%s: projection peak %d, want %d",
						label, res.StoredProjectionWordsPeak, ref.StoredProjectionWordsPeak)
				}
			}
		}
	}
}

// The partial-cover variant must conform too (it exercises the patch pass's
// mid-pass done flipping).
func TestIterSetCoverPartialBackendConformance(t *testing.T) {
	in := conformanceInstances(t)["planted"]
	repos := conformanceRepos(t, in)
	opts := Options{Delta: 0.5, Seed: 5, PartialEps: 0.1, FinalPatch: true}
	ref, err := IterSetCover(stream.NewSliceRepo(in), opts)
	if err != nil {
		t.Fatal(err)
	}
	for backend, mk := range repos {
		res, err := IterSetCover(mk(), opts)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		sameStats(t, backend, ref.Stats, res.Stats)
	}
}
