package core

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/scdisk"
	"repro/internal/setcover"
	"repro/internal/stream"
)

// conformanceRepos builds the three storage backends over the same instance.
// Algorithms must be unable to tell them apart: covers, pass counts, and
// space charges have to be byte-identical, because the model's Repository is
// the only thing they are allowed to observe.
func conformanceRepos(t testing.TB, in *setcover.Instance) map[string]func() stream.Repository {
	t.Helper()
	path := filepath.Join(t.TempDir(), "conf.scb")
	if err := scdisk.WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	return map[string]func() stream.Repository{
		"slice": func() stream.Repository { return stream.NewSliceRepo(in) },
		"func": func() stream.Repository {
			return stream.NewFuncRepo(in.N, in.M(), func(id int) setcover.Set {
				es := make([]setcover.Elem, len(in.Sets[id].Elems))
				copy(es, in.Sets[id].Elems)
				return setcover.Set{ID: id, Elems: es}
			})
		},
		"disk": func() stream.Repository {
			d, err := scdisk.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return d
		},
	}
}

func conformanceInstances(t testing.TB) map[string]*setcover.Instance {
	t.Helper()
	planted, _, _, err := gen.Planted(gen.PlantedConfig{N: 400, M: 900, K: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	uniform := gen.Uniform(300, 600, 0.03, 17)
	return map[string]*setcover.Instance{"planted": planted, "uniform": uniform}
}

func sameStats(t *testing.T, label string, want, got setcover.Stats) {
	t.Helper()
	if got.Passes != want.Passes {
		t.Errorf("%s: passes %d, want %d", label, got.Passes, want.Passes)
	}
	if got.SpaceWords != want.SpaceWords {
		t.Errorf("%s: space %d, want %d", label, got.SpaceWords, want.SpaceWords)
	}
	if got.Valid != want.Valid {
		t.Errorf("%s: valid %v, want %v", label, got.Valid, want.Valid)
	}
	if len(got.Cover) != len(want.Cover) {
		t.Fatalf("%s: cover size %d, want %d", label, len(got.Cover), len(want.Cover))
	}
	for i := range want.Cover {
		if got.Cover[i] != want.Cover[i] {
			t.Fatalf("%s: cover[%d] = %d, want %d", label, i, got.Cover[i], want.Cover[i])
		}
	}
}

// IterSetCover must produce byte-identical covers, pass counts, and space
// charges on SliceRepo, FuncRepo, and DiskRepo, at Workers ∈ {1, 2,
// GOMAXPROCS} — which also pits the segmented parallel decode (workers > 1)
// against the sequential reference (workers = 1) on every backend — and
// with segmented decode force-disabled, which must change nothing either.
func TestIterSetCoverBackendConformance(t *testing.T) {
	engines := []engine.Options{
		{Workers: 1},
		{Workers: 2},
		{Workers: runtime.GOMAXPROCS(0)},
		{Workers: 2, DisableSegmented: true},
	}
	for instName, in := range conformanceInstances(t) {
		repos := conformanceRepos(t, in)
		ref, err := IterSetCover(stream.NewSliceRepo(in),
			Options{Delta: 0.5, Seed: 7, FinalPatch: true, Engine: engine.Options{Workers: 1}})
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range engines {
			opts := Options{Delta: 0.5, Seed: 7, FinalPatch: true, Engine: eng}
			for backend, mk := range repos {
				label := fmt.Sprintf("%s/%s/workers=%d/noseg=%v", instName, backend, eng.Workers, eng.DisableSegmented)
				res, err := IterSetCover(mk(), opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				sameStats(t, label, ref.Stats, res.Stats)
				if res.BestK != ref.BestK || res.Iterations != ref.Iterations {
					t.Errorf("%s: bestK/iterations %d/%d, want %d/%d",
						label, res.BestK, res.Iterations, ref.BestK, ref.Iterations)
				}
				if res.StoredProjectionWordsPeak != ref.StoredProjectionWordsPeak {
					t.Errorf("%s: projection peak %d, want %d",
						label, res.StoredProjectionWordsPeak, ref.StoredProjectionWordsPeak)
				}
			}
		}
	}
}

// IterSetCover over a truncated SCB1 file must fail loudly at every worker
// count: the first pass ends early, poisons the run, and no guess's state
// may surface as a cover.
func TestTruncatedFileFailsIterSetCover(t *testing.T) {
	in := conformanceInstances(t)["planted"]
	var buf bytes.Buffer
	if err := scdisk.Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		d, err := scdisk.NewRepo(bytes.NewReader(truncated), int64(len(truncated)))
		if err != nil {
			t.Fatalf("truncated file should still open (header intact): %v", err)
		}
		res, err := IterSetCover(d, Options{Delta: 0.5, Seed: 7, FinalPatch: true,
			Engine: engine.Options{Workers: workers}})
		if err == nil {
			t.Fatalf("workers=%d: truncated solve returned a cover of %d sets", workers, len(res.Cover))
		}
		if errors.Is(err, ErrNoCover) {
			t.Fatalf("workers=%d: failure reads as ErrNoCover — the decode error was swallowed", workers)
		}
		if res.Valid || len(res.Cover) != 0 {
			t.Fatalf("workers=%d: failed run still reported a cover", workers)
		}
		if res.Passes != 1 {
			t.Fatalf("workers=%d: failed run consumed %d passes, want 1 (fail at the first)", workers, res.Passes)
		}
	}
}

// The partial-cover variant must conform too (it exercises the patch pass's
// mid-pass done flipping).
func TestIterSetCoverPartialBackendConformance(t *testing.T) {
	in := conformanceInstances(t)["planted"]
	repos := conformanceRepos(t, in)
	opts := Options{Delta: 0.5, Seed: 5, PartialEps: 0.1, FinalPatch: true}
	ref, err := IterSetCover(stream.NewSliceRepo(in), opts)
	if err != nil {
		t.Fatal(err)
	}
	for backend, mk := range repos {
		res, err := IterSetCover(mk(), opts)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		sameStats(t, backend, ref.Stats, res.Stats)
	}
}

// IterSetCover on a WEIGHTED instance must conform across every backend that
// can carry costs — SliceRepo (Instance.Weights), FuncRepo (a weight
// function), and the two disk variants (the SCWT section, positional reads
// and mmap) — at several worker counts and with segmented decode disabled.
// Unit weights must reproduce the unweighted cover exactly.
func TestIterSetCoverWeightedConformance(t *testing.T) {
	in, _, _, err := gen.Planted(gen.PlantedConfig{N: 400, M: 900, K: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := gen.WeightedSlice(gen.WeightedConfig{
		Kind: gen.WeightLogUniform, M: in.M(), Lo: 0.05, Hi: 20, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	in.Weights = ws
	path := filepath.Join(t.TempDir(), "weighted.scb")
	if err := scdisk.WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	openDisk := func(opts ...scdisk.OpenOption) stream.Repository {
		d, err := scdisk.Open(path, opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		return d
	}
	backends := map[string]func() stream.Repository{
		"slice": func() stream.Repository { return stream.NewSliceRepo(in) },
		"func": func() stream.Repository {
			fr := stream.NewFuncRepo(in.N, in.M(), func(id int) setcover.Set {
				es := make([]setcover.Elem, len(in.Sets[id].Elems))
				copy(es, in.Sets[id].Elems)
				return setcover.Set{ID: id, Elems: es}
			})
			fr.SetWeightFunc(func(id int) float64 { return ws[id] })
			return fr
		},
		"disk":      func() stream.Repository { return openDisk() },
		"disk-mmap": func() stream.Repository { return openDisk(scdisk.ReadOnlyMmap()) },
	}
	mkOpts := func(eng engine.Options) Options {
		return Options{Delta: 0.5, Seed: 7, FinalPatch: true, Engine: eng}
	}
	ref, err := IterSetCover(stream.NewSliceRepo(in), mkOpts(engine.Options{Workers: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Valid || !in.IsCover(ref.Cover) {
		t.Fatal("weighted reference cover invalid")
	}
	for _, eng := range []engine.Options{
		{Workers: 1},
		{Workers: 2},
		{Workers: runtime.GOMAXPROCS(0)},
		{Workers: 2, DisableSegmented: true},
	} {
		for backend, mk := range backends {
			label := fmt.Sprintf("weighted/%s/workers=%d/noseg=%v", backend, eng.Workers, eng.DisableSegmented)
			res, err := IterSetCover(mk(), mkOpts(eng))
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			sameStats(t, label, ref.Stats, res.Stats)
		}
	}

	// Unit weights: same cover and passes as no weights at all.
	plain, _, _, err := gen.Planted(gen.PlantedConfig{N: 400, M: 900, K: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	unit, _, _, err := gen.Planted(gen.PlantedConfig{N: 400, M: 900, K: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	unit.Weights = make([]float64, unit.M())
	for i := range unit.Weights {
		unit.Weights[i] = 1
	}
	want, err := IterSetCover(stream.NewSliceRepo(plain), mkOpts(engine.Options{Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := IterSetCover(stream.NewSliceRepo(unit), mkOpts(engine.Options{Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if got.Passes != want.Passes || len(got.Cover) != len(want.Cover) {
		t.Fatalf("unit weights changed the solve: passes %d/%d cover %d/%d",
			got.Passes, want.Passes, len(got.Cover), len(want.Cover))
	}
	for i := range want.Cover {
		if got.Cover[i] != want.Cover[i] {
			t.Fatalf("unit weights changed cover[%d]: %d vs %d", i, got.Cover[i], want.Cover[i])
		}
	}
}
