package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/offline"
	"repro/internal/setcover"
	"repro/internal/stream"
)

func plantedRepo(t testing.TB, n, m, k int, seed int64) (*stream.SliceRepo, int) {
	t.Helper()
	in, _, opt, err := gen.Planted(gen.PlantedConfig{N: n, M: m, K: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return stream.NewSliceRepo(in), opt
}

func TestIterSetCoverFindsValidCover(t *testing.T) {
	repo, opt := plantedRepo(t, 500, 1000, 10, 1)
	res, err := IterSetCover(repo, Options{Delta: 0.5, Offline: offline.Greedy{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatal("result not valid")
	}
	if !repo.Instance().IsCover(res.Cover) {
		t.Fatal("reported cover does not cover U")
	}
	ratio := float64(len(res.Cover)) / float64(opt)
	// O(ρ/δ) with ρ=ln n ≈ 6.2, 1/δ=2: generous sanity ceiling.
	if ratio > 25 {
		t.Fatalf("approximation ratio %.1f unreasonably large", ratio)
	}
	if res.BestK <= 0 {
		t.Fatal("BestK not reported")
	}
}

func TestPassCountIsTwoOverDelta(t *testing.T) {
	// Lemma 2.1: 2/δ passes, independent of the number of parallel guesses.
	for _, delta := range []float64{1, 0.5, 1.0 / 3.0, 0.25} {
		repo, _ := plantedRepo(t, 256, 512, 8, 2)
		res, err := IterSetCover(repo, Options{Delta: delta, Offline: offline.Greedy{}, Seed: 3})
		if err != nil {
			t.Fatalf("delta=%v: %v", delta, err)
		}
		want := 2 * int(math.Ceil(1/delta))
		if res.Passes > want {
			t.Errorf("delta=%v: passes = %d, want <= %d", delta, res.Passes, want)
		}
		// Early exit can only reduce passes, and passes come in pairs.
		if res.Passes%2 != 0 {
			t.Errorf("delta=%v: passes = %d, want even", delta, res.Passes)
		}
	}
}

func TestSpaceGrowsWithDelta(t *testing.T) {
	// Lemma 2.2: space ∝ m·n^δ — higher δ, more space (at fixed n, m).
	var prev int64 = -1
	for _, delta := range []float64{0.25, 0.5, 0.9} {
		repo, _ := plantedRepo(t, 1024, 2048, 16, 4)
		res, err := IterSetCover(repo, Options{Delta: delta, Offline: offline.Greedy{}, Seed: 4})
		if err != nil {
			t.Fatalf("delta=%v: %v", delta, err)
		}
		if prev > 0 && res.StoredProjectionWordsPeak < prev/2 {
			t.Errorf("delta=%v: projection space %d much smaller than at smaller delta (%d)",
				delta, res.StoredProjectionWordsPeak, prev)
		}
		prev = res.StoredProjectionWordsPeak
	}
}

func TestSpaceSublinearInInputSize(t *testing.T) {
	// The whole point of the paper: space must be o(m·n) — strictly below
	// storing the input. Input size here is sum of set sizes.
	repo, _ := plantedRepo(t, 2048, 4096, 32, 5)
	inputWords := int64(0)
	for _, s := range repo.Instance().Sets {
		inputWords += stream.WordsForElems(len(s.Elems))
	}
	res, err := IterSetCover(repo, Options{Delta: 0.25, Offline: offline.Greedy{}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpaceWords >= inputWords {
		t.Fatalf("space %d >= input size %d; not sublinear", res.SpaceWords, inputWords)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	repo1, _ := plantedRepo(t, 300, 600, 6, 9)
	repo2, _ := plantedRepo(t, 300, 600, 6, 9)
	o := Options{Delta: 0.5, Offline: offline.Greedy{}, Seed: 77}
	r1, err1 := IterSetCover(repo1, o)
	r2, err2 := IterSetCover(repo2, o)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if len(r1.Cover) != len(r2.Cover) || r1.BestK != r2.BestK || r1.SpaceWords != r2.SpaceWords {
		t.Fatalf("same seed, different outcomes: %+v vs %+v", r1.Stats, r2.Stats)
	}
}

func TestEmptyUniverse(t *testing.T) {
	repo := stream.NewSliceRepo(&setcover.Instance{N: 0})
	res, err := IterSetCover(repo, Options{Delta: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid || len(res.Cover) != 0 || res.Passes != 0 {
		t.Fatalf("empty universe: %+v", res.Stats)
	}
}

func TestInfeasibleInstance(t *testing.T) {
	in := &setcover.Instance{N: 4, Sets: []setcover.Set{{Elems: []setcover.Elem{0, 1}}}}
	in.Normalize()
	res, err := IterSetCover(stream.NewSliceRepo(in), Options{Delta: 0.5, Seed: 1})
	if !errors.Is(err, ErrNoCover) {
		t.Fatalf("err = %v, want ErrNoCover", err)
	}
	if res.Valid {
		t.Fatal("infeasible instance must not report valid")
	}
}

func TestBadDelta(t *testing.T) {
	repo, _ := plantedRepo(t, 16, 16, 2, 1)
	for _, d := range []float64{0, -0.5, 1.5} {
		if _, err := IterSetCover(repo, Options{Delta: d}); err == nil {
			t.Errorf("delta=%v accepted", d)
		}
	}
}

func TestSingleGuessRestriction(t *testing.T) {
	repo, opt := plantedRepo(t, 256, 512, 8, 11)
	res, err := IterSetCover(repo, Options{
		Delta: 0.5, Offline: offline.Greedy{}, Seed: 2,
		KMin: 8, KMax: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestK != 8 {
		t.Fatalf("BestK = %d, want 8", res.BestK)
	}
	if !repo.Instance().IsCover(res.Cover) {
		t.Fatal("not a cover")
	}
	_ = opt
}

func TestDisableSizeTestStoresMore(t *testing.T) {
	// Ablation E9: without the size test, stored projections grow.
	mk := func(disable bool) int64 {
		repo, _ := plantedRepo(t, 512, 1024, 4, 13)
		res, err := IterSetCover(repo, Options{
			Delta: 0.5, Offline: offline.Greedy{}, Seed: 3,
			DisableSizeTest: disable, KMin: 4, KMax: 4,
			AdaptiveIterations: true, // without the size test the fixed 1/δ
			// iteration budget may not converge; the ablation compares space.
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.StoredProjectionWordsPeak
	}
	with, without := mk(false), mk(true)
	if without < with {
		t.Fatalf("disabling the size test should not shrink storage: with=%d without=%d", with, without)
	}
}

func TestAdaptiveIterationsConverges(t *testing.T) {
	// Ablation E10: with a deliberately tiny sample the fixed 1/δ iterations
	// fail, but adaptive iterations still converge.
	tiny := func(k, n, m, uncovered int) int { return 8 }
	repo, _ := plantedRepo(t, 1024, 1024, 4, 17)
	res, err := IterSetCover(repo, Options{
		Delta: 0.5, Offline: offline.Greedy{}, Seed: 5,
		Sizer: tiny, AdaptiveIterations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !repo.Instance().IsCover(res.Cover) {
		t.Fatal("adaptive run did not produce a cover")
	}
	if res.Iterations <= 2 {
		t.Fatalf("tiny samples should need many iterations, got %d", res.Iterations)
	}
}

func TestPaperSizerIsUsable(t *testing.T) {
	repo, _ := plantedRepo(t, 128, 256, 4, 19)
	res, err := IterSetCover(repo, Options{
		Delta: 0.5, Offline: offline.Greedy{}, Seed: 7,
		Sizer: PaperSizer(0.05, 1, 0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !repo.Instance().IsCover(res.Cover) {
		t.Fatal("paper sizer run failed to cover")
	}
}

func TestExactOfflineSolver(t *testing.T) {
	// ρ=1 path (Theorem 2.8's exponential-power regime) on a small instance.
	repo, opt := plantedRepo(t, 60, 120, 4, 23)
	res, err := IterSetCover(repo, Options{Delta: 0.5, Offline: offline.Exact{}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !repo.Instance().IsCover(res.Cover) {
		t.Fatal("not a cover")
	}
	if len(res.Cover) > 8*opt {
		t.Fatalf("cover %d vs opt %d: exact offline solver should stay near O(opt/δ)", len(res.Cover), opt)
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Delta != 0.5 || o.Offline == nil {
		t.Fatalf("DefaultOptions = %+v", o)
	}
}

func TestTrackerNeverNegative(t *testing.T) {
	// The Grow/Shrink pairing must balance; a panic here means the space
	// accounting is broken. Exercise several shapes.
	for seed := int64(0); seed < 5; seed++ {
		repo, _ := plantedRepo(t, 200, 400, 5, seed)
		if _, err := IterSetCover(repo, Options{Delta: 1.0 / 3.0, Offline: offline.Greedy{}, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: on random planted instances, iterSetCover always returns a
// verified cover with ratio bounded by a generous O(ρ/δ)-style ceiling.
func TestPropAlwaysCovers(t *testing.T) {
	f := func(seed int64) bool {
		k := 2 + int(uint(seed)%5)
		n := 64 + int(uint(seed)%128)
		m := 2 * n
		in, _, opt, err := gen.Planted(gen.PlantedConfig{N: n, M: m, K: k, Seed: seed})
		if err != nil {
			return false
		}
		repo := stream.NewSliceRepo(in)
		res, err := IterSetCover(repo, Options{Delta: 0.5, Offline: offline.Greedy{}, Seed: seed})
		if err != nil {
			return false
		}
		if !in.IsCover(res.Cover) {
			return false
		}
		rho := math.Log(float64(n)) + 1
		return float64(len(res.Cover)) <= 4*rho/0.5*float64(opt)+4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIterSetCoverDelta50(b *testing.B) {
	repo, _ := plantedRepo(b, 2048, 4096, 32, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repo.ResetPasses()
		if _, err := IterSetCover(repo, Options{Delta: 0.5, Offline: offline.Greedy{}, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIterSetCoverDelta25(b *testing.B) {
	repo, _ := plantedRepo(b, 2048, 4096, 32, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repo.ResetPasses()
		if _, err := IterSetCover(repo, Options{Delta: 0.25, Offline: offline.Greedy{}, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
