// Package pd implements a batched primal-dual algorithm for (weighted)
// SetCover in the element-arrival model: the universe is revealed in batches
// of elements, and the algorithm maintains a fractional primal solution
// x ∈ [0,1]^m (how much of each set is bought) and dual variables y_e on the
// revealed elements, raising duals until every revealed element is
// fractionally covered. It is the classic online/streaming primal-dual
// scheme (Buchbinder–Naor style) the paper's Section 1 cites as the
// multipass LP-based alternative to greedy thresholding.
//
// Per batch B of elements, the update is:
//
//	while some e ∈ B has Σ_{j: e∈S_j} x_j < 1:
//	    y_e += ε for every undercovered e ∈ B   (simultaneously)
//	    x_j  = (exp(ln(1+d)/c_j · Y_j) − 1) / d  for every touched set j
//
// where d = m, c_j is set j's cost (1 unweighted), and Y_j = Σ_{e∈S_j} y_e
// over revealed elements. x_j is a pure function of Y_j, so only sets whose
// dual sum changed are recomputed. x_j reaches 1 exactly when Y_j = c_j,
// which bounds the rounds per batch by ceil(max_e min_{j∋e} c_j / ε) + 2 —
// the convergence cap below is not a tunable, it is that bound.
//
// The fractional solution is rounded by frequency: every element is covered
// by at most f sets (f tracked from the gathered incidence), so each revealed
// element has some covering set with x_j ≥ 1/f, and picking every set with
// x_j ≥ 1/f yields an integral cover by construction (the standard
// f-approximation rounding; f·(1+ε')-competitive against the LP).
//
// Streaming costs: each element batch spends ONE pass over the repository to
// gather the batch's incidence lists (which sets contain which batch
// elements), plus one final verification pass — ceil(n/ElemBatch) + 1 passes
// total. Working memory is 2m words for (x, Y) plus the current batch's
// incidence, charged to the Tracker and released per batch. ModeTrivial
// (every element its own singleton batch) is the degenerate baseline the
// dedicated batched mode is measured against in experiment E19: identical
// update rule, n passes instead of n/ElemBatch.
package pd

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/setcover"
	"repro/internal/stream"
)

// AlgorithmName identifies the batched primal-dual in Stats reports.
const AlgorithmName = "primal-dual"

// DefaultEpsilon is the dual increment when Options.Epsilon is zero. Smaller
// ε tracks the LP tighter at proportionally more rounds per batch.
const DefaultEpsilon = 1e-3

// DefaultElemBatch is the element-batch size when Options.ElemBatch is zero
// (dedicated mode): n/256 repository passes on typical universes.
const DefaultElemBatch = 256

// Mode selects how the universe is revealed.
type Mode int

const (
	// ModeDedicated reveals ElemBatch elements per batch and raises the
	// duals of ALL undercovered batch elements simultaneously each round —
	// the batched algorithm proper.
	ModeDedicated Mode = iota
	// ModeTrivial reveals one element per batch (ElemBatch is ignored): the
	// degenerate baseline with n incidence passes. Results generally differ
	// from ModeDedicated — simultaneous dual raises share credit across a
	// batch — which is exactly the comparison experiment E19 draws.
	ModeTrivial
)

func (m Mode) String() string {
	switch m {
	case ModeDedicated:
		return "dedicated"
	case ModeTrivial:
		return "trivial"
	default:
		return fmt.Sprintf("pd.Mode(%d)", int(m))
	}
}

// ParseMode parses "dedicated" or "trivial" (CLI flag surface).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "dedicated":
		return ModeDedicated, nil
	case "trivial":
		return ModeTrivial, nil
	}
	return 0, fmt.Errorf("pd: unknown mode %q (want dedicated or trivial)", s)
}

// Options configures BatchedPrimalDual. The zero value is usable: dedicated
// mode, ε = DefaultEpsilon, ElemBatch = DefaultElemBatch, engine defaults.
type Options struct {
	// Mode selects dedicated (batched) or trivial (per-element) reveal.
	Mode Mode
	// Epsilon is the dual increment; zero means DefaultEpsilon. Must be
	// finite and positive otherwise.
	Epsilon float64
	// ElemBatch is the number of elements revealed per batch in dedicated
	// mode; zero means DefaultElemBatch. Ignored by ModeTrivial.
	ElemBatch int
	// Engine configures the shared pass executor. Results are identical at
	// every setting (single sequential observer per pass).
	Engine engine.Options
}

// Result extends Stats with primal-dual diagnostics.
type Result struct {
	setcover.Stats
	// Batches is the number of element batches processed.
	Batches int
	// Rounds is the total number of dual-update rounds across all batches.
	Rounds int
	// MaxFrequency is f, the largest number of sets covering any element —
	// the rounding threshold is 1/f and f bounds the rounding loss.
	MaxFrequency int
	// CoverWeight is the total cost of the reported cover (its cardinality
	// on unweighted repositories).
	CoverWeight float64
}

// BatchedPrimalDual runs the batched primal-dual algorithm over the
// repository. On repositories carrying per-set costs (stream.Weighted) it
// solves weighted SetCover; otherwise every set costs 1.
func BatchedPrimalDual(repo stream.Repository, opts Options) (Result, error) {
	res := Result{Stats: setcover.Stats{Algorithm: AlgorithmName}}
	n, m := repo.UniverseSize(), repo.NumSets()

	eps := opts.Epsilon
	if eps == 0 {
		eps = DefaultEpsilon
	}
	if !(eps > 0) || eps > math.MaxFloat64 {
		return res, fmt.Errorf("pd: epsilon %v out of (0, +Inf)", opts.Epsilon)
	}
	res.Extra = eps
	batch := opts.ElemBatch
	if batch <= 0 {
		batch = DefaultElemBatch
	}
	if opts.Mode == ModeTrivial {
		batch = 1
	}

	if n == 0 {
		res.Valid = true
		return res, nil
	}
	if m == 0 {
		return res, setcover.ErrInfeasible
	}

	eng := engine.New(opts.Engine)
	tracker := stream.NewTracker()
	var weightOf func(int) float64
	if w, ok := repo.(stream.Weighted); ok && w.HasWeights() {
		weightOf = w.Weight
	}
	costOf := func(j int) float64 {
		if weightOf == nil {
			return 1
		}
		return weightOf(j)
	}

	// Primal x and dual sums Y live for the whole run: 2m words.
	x := make([]float64, m)
	Y := make([]float64, m)
	tracker.Grow(2 * int64(m))
	d := float64(m)
	lnFactor := math.Log(1 + d)

	maxFreq := 0
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		res.Batches++

		// One pass: gather the incidence lists of the batch elements.
		// Set IDs fit int32 (the SCB1 dimension limit), halving the
		// footprint of the dominant per-batch structure.
		inc := make([][]int32, hi-lo)
		var incWords int64
		if err := eng.Run(repo, engine.Func(func(sets []setcover.Set) {
			for _, s := range sets {
				es := s.Elems
				i := sort.Search(len(es), func(i int) bool { return int(es[i]) >= lo })
				for ; i < len(es) && int(es[i]) < hi; i++ {
					inc[es[i]-setcover.Elem(lo)] = append(inc[es[i]-setcover.Elem(lo)], int32(s.ID))
				}
			}
		})); err != nil {
			res.Passes = repo.Passes()
			res.SpaceWords = tracker.Peak()
			return res, fmt.Errorf("pd: %w", err)
		}
		// Charge the incidence plus the round cap's input: the costliest
		// cheapest-option over the batch.
		maxMinCost := 0.0
		for i, sets := range inc {
			if len(sets) == 0 {
				res.Passes = repo.Passes()
				res.SpaceWords = tracker.Peak()
				return res, fmt.Errorf("%w: element %d in no set", setcover.ErrInfeasible, lo+i)
			}
			if len(sets) > maxFreq {
				maxFreq = len(sets)
			}
			minC := math.Inf(1)
			for _, j := range sets {
				if c := costOf(int(j)); c < minC {
					minC = c
				}
			}
			if minC > maxMinCost {
				maxMinCost = minC
			}
			incWords += stream.WordsForElems(len(sets))
		}
		tracker.Grow(incWords)

		// Dual-raise rounds. An element still undercovered after
		// ceil(minCost/ε) rounds would have pushed its cheapest set's Y past
		// its cost, forcing x ≥ 1 — so the cap below is unreachable unless
		// the arithmetic is broken, and hitting it is a loud bug, not a
		// tuning problem.
		roundCap := int(math.Ceil(maxMinCost/eps)) + 2
		touched := make([]int32, 0, 64)
		for round := 0; ; round++ {
			if round > roundCap {
				res.Passes = repo.Passes()
				res.SpaceWords = tracker.Peak()
				return res, fmt.Errorf("pd: batch [%d,%d) did not converge in %d rounds (eps=%g)", lo, hi, roundCap, eps)
			}
			touched = touched[:0]
			for _, sets := range inc {
				cov := 0.0
				for _, j := range sets {
					cov += x[j]
				}
				if cov < 1 {
					for _, j := range sets {
						Y[j] += eps
						touched = append(touched, j)
					}
				}
			}
			if len(touched) == 0 {
				break
			}
			res.Rounds++
			for _, j := range touched {
				x[j] = (math.Exp(lnFactor/costOf(int(j))*Y[j]) - 1) / d
			}
		}
		tracker.Shrink(incWords)
	}

	// Frequency rounding: every revealed element has Σ x over its ≤ maxFreq
	// covering sets ≥ 1, so one of them clears 1/maxFreq.
	threshold := 1 / float64(maxFreq)
	var cover []int
	picked := bitset.New(m)
	for j := 0; j < m; j++ {
		if x[j] >= threshold {
			cover = append(cover, j)
			picked.Set(j)
		}
	}
	tracker.Grow(stream.WordsForIDs(len(cover)))

	// Verification pass: the cover is complete by construction, but this
	// repository reports Valid only after checking against the actual stream.
	uncovered := bitset.New(n)
	uncovered.Fill()
	tracker.Grow(stream.WordsForBitset(n))
	if err := eng.Run(repo, engine.Func(func(sets []setcover.Set) {
		for _, s := range sets {
			if picked.Test(s.ID) {
				uncovered.SubtractSlice(s.Elems)
			}
		}
	})); err != nil {
		res.Passes = repo.Passes()
		res.SpaceWords = tracker.Peak()
		return res, fmt.Errorf("pd: %w", err)
	}

	res.Cover = cover
	res.Valid = uncovered.Empty()
	res.Passes = repo.Passes()
	res.SpaceWords = tracker.Peak()
	res.MaxFrequency = maxFreq
	res.CoverWeight = stream.CoverWeight(repo, cover)
	if !res.Valid {
		return res, fmt.Errorf("pd: rounded cover leaves %d elements uncovered", uncovered.Count())
	}
	return res, nil
}
