package pd

import (
	"errors"
	"math"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/setcover"
	"repro/internal/stream"
)

func plantedRepo(t *testing.T, n, m, k int, seed int64) (*setcover.Instance, *stream.SliceRepo) {
	t.Helper()
	in, _, _, err := gen.Planted(gen.PlantedConfig{N: n, M: m, K: k, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return in, stream.NewSliceRepo(in)
}

func TestBatchedPrimalDualCovers(t *testing.T) {
	in, repo := plantedRepo(t, 300, 600, 10, 1)
	res, err := BatchedPrimalDual(repo, Options{ElemBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid || !in.IsCover(res.Cover) {
		t.Fatal("pd cover does not cover the universe")
	}
	wantPasses := res.Batches + 1
	if res.Passes != wantPasses {
		t.Fatalf("passes = %d, want batches+1 = %d", res.Passes, wantPasses)
	}
	if res.Batches != (300+63)/64 {
		t.Fatalf("batches = %d, want %d", res.Batches, (300+63)/64)
	}
	if res.MaxFrequency < 1 || res.Rounds < 1 || res.SpaceWords < int64(2*600) {
		t.Fatalf("implausible diagnostics: f=%d rounds=%d space=%d",
			res.MaxFrequency, res.Rounds, res.SpaceWords)
	}
	if res.CoverWeight != float64(len(res.Cover)) {
		t.Fatalf("unweighted CoverWeight %v != |cover| %d", res.CoverWeight, len(res.Cover))
	}
}

func TestBatchedPrimalDualWeighted(t *testing.T) {
	in, _ := plantedRepo(t, 200, 400, 8, 2)
	ws, err := gen.WeightedSlice(gen.WeightedConfig{Kind: gen.WeightUniform, M: 400, Lo: 0.5, Hi: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	in.Weights = ws
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	repo := stream.NewSliceRepo(in)
	res, err := BatchedPrimalDual(repo, Options{ElemBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(res.Cover) {
		t.Fatal("weighted pd cover does not cover the universe")
	}
	want := in.CoverWeight(res.Cover)
	if math.Abs(res.CoverWeight-want) > 1e-9 {
		t.Fatalf("CoverWeight %v != instance CoverWeight %v", res.CoverWeight, want)
	}
}

// The trivial mode must also produce a full cover, at one pass per element
// (plus verification), and generally along a different trajectory.
func TestTrivialMode(t *testing.T) {
	in, repo := plantedRepo(t, 60, 120, 5, 3)
	res, err := BatchedPrimalDual(repo, Options{Mode: ModeTrivial})
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(res.Cover) {
		t.Fatal("trivial-mode cover does not cover the universe")
	}
	if res.Batches != 60 || res.Passes != 61 {
		t.Fatalf("trivial mode: batches=%d passes=%d, want 60/61", res.Batches, res.Passes)
	}
}

// One sequential observer per pass means results must be identical at every
// engine configuration.
func TestDeterministicAcrossEngineConfigs(t *testing.T) {
	_, repo := plantedRepo(t, 250, 500, 9, 4)
	ref, err := BatchedPrimalDual(repo, Options{ElemBatch: 50, Engine: engine.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, eo := range []engine.Options{
		{Workers: 2},
		{Workers: runtime.GOMAXPROCS(0), BatchSize: 16},
		{Workers: 2, DisableSegmented: true},
	} {
		in2, repo2 := plantedRepo(t, 250, 500, 9, 4)
		res, err := BatchedPrimalDual(repo2, Options{ElemBatch: 50, Engine: eo})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cover) != len(ref.Cover) || res.Rounds != ref.Rounds || res.SpaceWords != ref.SpaceWords {
			t.Fatalf("config %+v diverged: cover %d/%d rounds %d/%d space %d/%d",
				eo, len(res.Cover), len(ref.Cover), res.Rounds, ref.Rounds, res.SpaceWords, ref.SpaceWords)
		}
		for i := range ref.Cover {
			if res.Cover[i] != ref.Cover[i] {
				t.Fatalf("config %+v: cover[%d] differs", eo, i)
			}
		}
		if !in2.IsCover(res.Cover) {
			t.Fatal("cover invalid")
		}
	}
}

func TestInfeasible(t *testing.T) {
	in := &setcover.Instance{N: 4, Sets: []setcover.Set{{ID: 0, Elems: []setcover.Elem{0, 1}}}}
	_, err := BatchedPrimalDual(stream.NewSliceRepo(in), Options{})
	if !errors.Is(err, setcover.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	_, err = BatchedPrimalDual(stream.NewSliceRepo(&setcover.Instance{N: 3}), Options{})
	if !errors.Is(err, setcover.ErrInfeasible) {
		t.Fatalf("empty family: want ErrInfeasible, got %v", err)
	}
}

func TestBadEpsilon(t *testing.T) {
	_, repo := plantedRepo(t, 20, 40, 3, 5)
	for _, eps := range []float64{-1, math.Inf(1), math.NaN()} {
		if _, err := BatchedPrimalDual(repo, Options{Epsilon: eps}); err == nil {
			t.Fatalf("epsilon %v accepted", eps)
		}
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"dedicated": ModeDedicated, "trivial": ModeTrivial} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted bogus")
	}
}
