// Package streamsetcover is a from-scratch Go implementation of
// "Towards Tight Bounds for the Streaming Set Cover Problem"
// (Har-Peled, Indyk, Mahabadi, Vakilian — PODS 2016).
//
// It provides:
//
//   - IterSetCover — the paper's main algorithm (Theorem 2.8): 2/δ passes,
//     Õ(m·n^δ) space, O(ρ/δ)-approximation;
//   - AlgGeomSC — the geometric variant for points/disks/rectangles/fat
//     triangles (Theorem 4.6): O(1) passes, Õ(n) space;
//   - every baseline from the paper's Figure 1.1 (greedy in one or n passes,
//     SG09 thresholding, Emek–Rosén, Chakrabarti–Wirth, DIMV14 sampling);
//   - executable versions of the paper's lower-bound constructions
//     (Sections 3, 5, 6) in repro/internal/comm;
//   - instance generators, a pass-counting stream model, and explicit space
//     accounting so the paper's pass/space/approximation trade-offs are
//     measurable;
//   - a shared pass engine (internal/engine) under EVERY streaming
//     algorithm — IterSetCover, the Figure 1.1 baselines, the max-k-cover
//     primitives, the geometric AlgGeomSC (through the engine's generic
//     element-type support), and the communication-protocol simulation:
//     one physical pass per scan, batched delivery, the paper's "parallel
//     guesses" (Lemma 2.1) running as actual goroutines, and segmented
//     parallel decode of the stream itself on capable repositories — tune
//     it with Options.Engine / GeomOptions.Engine (EngineOptions) or the
//     per-call trailing argument of the baselines and max-cover entry
//     points. Passes that fail mid-stream (truncated or corrupt storage,
//     or a stream that silently ends short) surface as errors from every
//     solve entry point, never as covers built from a partial scan.
//
// Quick start:
//
//	in, _, opt, _ := streamsetcover.Planted(streamsetcover.PlantedConfig{
//		N: 1000, M: 2000, K: 20, Seed: 1,
//	})
//	repo := streamsetcover.NewRepository(in)
//	res, err := streamsetcover.IterSetCover(repo, streamsetcover.Options{
//		Delta: 0.5, Seed: 1,
//	})
//	// res.Cover is a verified cover; res.Passes == 4; res.SpaceWords is the
//	// peak working memory in 64-bit words.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured reproduction results.
package streamsetcover

import (
	"io"

	"repro/internal/baseline"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/maxcover"
	"repro/internal/obs"
	"repro/internal/offline"
	"repro/internal/pd"
	"repro/internal/scdisk"
	"repro/internal/scdyn"
	"repro/internal/serve"
	"repro/internal/setcover"
	"repro/internal/stream"
)

// Core problem types.
type (
	// Instance is a SetCover input: N elements and a family of sets.
	Instance = setcover.Instance
	// Set is one set of the family.
	Set = setcover.Set
	// Elem indexes an element of the universe.
	Elem = setcover.Elem
	// Stats is the (cover, passes, space, validity) report all algorithms
	// return.
	Stats = setcover.Stats
)

// Streaming model.
type (
	// Repository is the read-only, pass-counted set stream.
	Repository = stream.Repository
	// SliceRepo is the standard in-memory repository.
	SliceRepo = stream.SliceRepo
	// FuncRepo streams generator-produced sets with no backing slice.
	FuncRepo = stream.FuncRepo
	// DiskRepo is the out-of-core repository: sets stream straight off an
	// SCB1 file (see DESIGN.md §6), so instances larger than memory run
	// through every algorithm unmodified. Open one with OpenFile.
	DiskRepo = scdisk.Repo
	// Tracker meters working memory in 64-bit words. Safe for concurrent
	// use: the pass engine charges it from several workers at once.
	Tracker = stream.Tracker

	// EngineOptions tunes the shared pass executor (internal/engine, see
	// DESIGN.md §5) that fans each physical pass out to the algorithm's
	// observers: Workers goroutines (default GOMAXPROCS) consuming batches
	// of BatchSize sets (default engine.DefaultBatchSize). With Workers > 1
	// the stream itself is also DECODED in parallel when the repository
	// supports it (indexed SCB1 files and both in-memory backends): the pass
	// splits into contiguous chunks decoded on separate goroutines and
	// reassembled in stream order, so the CPU-bound varint decode of a disk
	// pass scales with cores (DisableSegmented opts out). Set it on
	// Options.Engine. Results, pass counts, and space accounting are
	// identical for every setting — it is purely a wall-clock knob.
	EngineOptions = engine.Options
)

// NewRepository wraps an instance as a pass-counted stream.
func NewRepository(in *Instance) *SliceRepo { return stream.NewSliceRepo(in) }

// NewFuncRepository builds a repository of m generator-produced sets over n
// elements; gen(id) must return set id with freshly allocated sorted-unique
// elements (see stream.NewFuncRepo for the full contract).
func NewFuncRepository(n, m int, gen func(id int) Set) *FuncRepo {
	return stream.NewFuncRepo(n, m, gen)
}

// NewSequentialFuncRepository is NewFuncRepository for generators that are
// NOT safe for concurrent calls (stateful closures): the repository opts out
// of segmented decode, so the pass engine drives gen from a single goroutine
// at every worker count, and a runtime guard panics loudly if gen is entered
// concurrently anyway. Use it when the generator reads from an external
// iterator or mutates shared scratch state.
func NewSequentialFuncRepository(n, m int, gen func(id int) Set) *FuncRepo {
	return stream.NewSequentialFuncRepo(n, m, gen)
}

// OpenFile opens an SCB1 instance file (plain or with the scdisk index
// footer) as a disk-backed repository. Every algorithm in this package runs
// against it unmodified, holding O(BatchSize · avg-set-size) decoded sets
// live instead of the whole family; on indexed files with Workers > 1 the
// pass engine decodes each pass on several goroutines (segmented decode).
// Close it when done. A truncated or corrupt file fails loudly: the solve
// entry points and VerifyCover return the decode error of the pass that hit
// it (DiskRepo.Err is only a sticky first-failure diagnostic).
func OpenFile(path string, opts ...OpenOption) (*DiskRepo, error) {
	return scdisk.Open(path, opts...)
}

// OpenOption configures OpenFile.
type OpenOption = scdisk.OpenOption

// ReadOnlyMmap asks OpenFile to memory-map the instance read-only and decode
// sets straight from the mapping, dropping the positional-read syscalls and
// buffer copies from every pass. Purely a wall-clock knob: streams, covers,
// and space accounting are identical to the default backend. On platforms
// without mmap support (or if mapping fails) OpenFile silently falls back to
// positional reads; DiskRepo.Mapped reports which backend is live.
func ReadOnlyMmap() OpenOption { return scdisk.ReadOnlyMmap() }

// InstanceWriter streams an instance to the indexed SCB1 format set by set
// (NewInstanceWriter, then exactly m WriteSet calls, then Close), so
// generators can emit families larger than RAM.
type InstanceWriter = scdisk.Writer

// NewInstanceWriter writes the SCB1 header for n elements and m sets and
// returns the streaming writer.
func NewInstanceWriter(w io.Writer, n, m int) (*InstanceWriter, error) {
	return scdisk.NewWriter(w, n, m)
}

// WriteInstanceFile writes a materialized instance to path in the indexed
// SCB1 format understood by OpenFile (and by ReadInstanceBinary, which
// ignores the index).
var WriteInstanceFile = scdisk.WriteFile

// VerifyCover spends one extra pass over the repository and reports how many
// elements of U the given set IDs cover. It is the streaming counterpart of
// Instance.CoverageOf for backends with no materialized instance; the pass is
// charged to the repository's counter like any other. It runs through the
// pass engine configured by opts (the zero value means engine defaults) —
// disk-backed repositories verify on the batched, buffer-recycling,
// segmented-decode path, and opts.DisableSegmented pins the verify pass to
// the single-reader path along with everything else. A non-nil error means
// the pass failed mid-stream (truncated or corrupt file): the counts are
// from a partial scan and must not be trusted as a verification.
func VerifyCover(repo Repository, cover []int, opts EngineOptions) (covered, n int, err error) {
	n = repo.UniverseSize()
	chosen := make(map[int]bool, len(cover))
	for _, id := range cover {
		chosen[id] = true
	}
	seen := bitset.New(n)
	err = engine.New(opts).Run(repo, engine.Func(func(batch []Set) {
		for _, s := range batch {
			if chosen[s.ID] {
				for _, e := range s.Elems {
					seen.Set(int(e))
				}
			}
		}
	}))
	return seen.Count(), n, err
}

// The main algorithm (Figure 1.3 / Theorem 2.8).
type (
	// Options configures IterSetCover.
	Options = core.Options
	// Result is IterSetCover's extended report.
	Result = core.Result
)

// IterSetCover runs the paper's main streaming algorithm.
func IterSetCover(repo Repository, opts Options) (Result, error) {
	return core.IterSetCover(repo, opts)
}

// DefaultOptions returns Theorem 2.8 defaults (δ = 1/2, greedy offline).
func DefaultOptions() Options { return core.DefaultOptions() }

// Offline solvers (algOfflineSC).
type (
	// OfflineSolver solves in-memory SetCover instances.
	OfflineSolver = offline.Solver
	// GreedySolver is the ln(n)-approximate greedy (ρ = ln n).
	GreedySolver = offline.Greedy
	// ExactSolver is the optimal branch-and-bound (ρ = 1).
	ExactSolver = offline.Exact
	// ReducedInstance is the outcome of the dominance preprocessing.
	ReducedInstance = offline.Reduced
)

// Reduce applies OPT-preserving dominance reductions (set and element
// dominance, to a fixpoint). Useful as a preprocessing step before exact
// solving or before persisting instances.
var Reduce = offline.Reduce

// OptSize returns the exact optimum of an in-memory instance (ground truth
// for ratio reporting; exponential worst case).
var OptSize = offline.OptSize

// Baselines (the upper-bound rows of Figure 1.1). Every baseline accepts an
// optional trailing EngineOptions value configuring the pass executor for
// that call alone — the form concurrent solves with different configurations
// must use (internal/serve does). With no options the engine defaults apply
// (GOMAXPROCS workers). On repositories carrying per-set costs (see
// OpenFile and InstanceWriter.SetWeights) every baseline generalizes its
// pick rule from coverage to cost-effectiveness; unit weights reduce
// byte-identically to the unweighted behavior.
var (
	// OnePassGreedy stores the input in one pass and runs greedy: O(mn) space.
	OnePassGreedy = baseline.OnePassGreedy
	// MultiPassGreedy runs greedy with O(n) space and one pass per pick.
	MultiPassGreedy = baseline.MultiPassGreedy
	// ThresholdGreedy is the SG09-style O(log n)-pass thresholding greedy.
	ThresholdGreedy = baseline.ThresholdGreedy
	// EmekRosen is the ER14 one-pass O(√n)-approximation.
	EmekRosen = baseline.EmekRosen
	// ChakrabartiWirth is the CW16 p-pass thresholding algorithm.
	ChakrabartiWirth = baseline.ChakrabartiWirth
	// DIMV14 is the element-sampling baseline (exponentially more passes at
	// the same space as IterSetCover).
	DIMV14 = baseline.DIMV14
	// SahaGetoorSetCover is the faithful [SG09] algorithm: SetCover via
	// repeated one-pass Max k-Cover. Like the baselines it accepts an
	// optional trailing EngineOptions value for this call alone.
	SahaGetoorSetCover = maxcover.SahaGetoorSetCover

	// Partial (ε-Partial Set Cover) variants: cover at least a (1-ε)
	// fraction of U.
	EmekRosenPartial        = baseline.EmekRosenPartial
	ChakrabartiWirthPartial = baseline.ChakrabartiWirthPartial
	ThresholdGreedyPartial  = baseline.ThresholdGreedyPartial
	MultiPassGreedyPartial  = baseline.MultiPassGreedyPartial

	// Max k-Cover primitives ([SG09]'s building block). The streaming
	// variant accepts an optional trailing EngineOptions value per call.
	MaxKCoverGreedy    = maxcover.Greedy
	MaxKCoverStreaming = maxcover.Streaming
)

// MaxKCoverResult reports a Max k-Cover solution.
type MaxKCoverResult = maxcover.Result

// DIMV14Options configures the DIMV14 baseline.
type DIMV14Options = baseline.DIMV14Options

// Weighted SetCover. Per-set costs enter the system in one of three ways — an
// Instance.Weights vector, an SCWT weight section in an SCB1 file (written by
// InstanceWriter.SetWeights, picked up transparently by OpenFile), or
// FuncRepo.SetWeightFunc — and every algorithm consumes them through the same
// repository capability (stream.Weighted): the baselines and IterSetCover
// generalize greedy's pick rule to cost-effectiveness, and BatchedPrimalDual
// scales its dual thresholds by cost. Repositories without weights behave as
// all-ones, byte-identically to the unweighted code paths.
type (
	// PDOptions configures BatchedPrimalDual (mode, ε, element-batch size,
	// engine).
	PDOptions = pd.Options
	// PDResult is BatchedPrimalDual's extended report (batches, dual-update
	// rounds, max frequency, cover cost).
	PDResult = pd.Result
	// PDMode selects how the primal-dual reveals the universe: dedicated
	// batches or one element at a time.
	PDMode = pd.Mode
)

// Primal-dual modes and defaults.
const (
	PDModeDedicated = pd.ModeDedicated
	PDModeTrivial   = pd.ModeTrivial
)

var (
	// BatchedPrimalDual runs the batched primal-dual algorithm: per element
	// batch, one repository pass gathers incidence, then duals rise
	// simultaneously until the batch is fractionally covered; frequency
	// rounding yields the integral cover. f-approximate on weighted and
	// unweighted repositories alike.
	BatchedPrimalDual = pd.BatchedPrimalDual
	// ParsePDMode parses "dedicated" or "trivial" (the -pd-mode flag surface).
	ParsePDMode = pd.ParseMode

	// RepositoryHasWeights reports whether the repository carries per-set
	// costs.
	RepositoryHasWeights = stream.HasWeights
	// WeightOf returns repo's cost for one set (1 on unweighted
	// repositories).
	WeightOf = stream.WeightOf
	// CoverWeight sums repo's costs over a cover (its cardinality on
	// unweighted repositories).
	CoverWeight = stream.CoverWeight

	// ValidateWeights rejects weight vectors with NaN, ±Inf, zero, or
	// negative entries (the shared trust-boundary check).
	ValidateWeights = setcover.ValidateWeights
)

// Geometric setting (Section 4).
type (
	// Point is a point in the plane.
	Point = geom.Point
	// Shape is a disk, axis-parallel rectangle, or triangle.
	Shape = geom.Shape
	// Disk is a closed disk.
	Disk = geom.Disk
	// Rect is a closed axis-parallel rectangle.
	Rect = geom.Rect
	// Triangle is a closed triangle.
	Triangle = geom.Triangle
	// GeomInstance is a points-and-shapes SetCover input.
	GeomInstance = geom.Instance
	// GeomOptions configures AlgGeomSC.
	GeomOptions = geom.GeomOptions
	// GeomResult is AlgGeomSC's extended report.
	GeomResult = geom.GeomResult
	// ShapeRepo streams shapes with pass counting.
	ShapeRepo = geom.ShapeRepo
	// ShapeStream is the pass-counted shape-stream capability AlgGeomSC
	// solves over; ShapeRepo is the standard implementation. It exists as
	// an interface so storage layers (and failure injectors) can provide
	// their own shape streams.
	ShapeStream = geom.ShapeStream
)

// NewShapeRepo wraps a geometric instance as a shape stream.
func NewShapeRepo(in *GeomInstance) *ShapeRepo { return geom.NewShapeRepo(in) }

// AlgGeomSC runs the geometric streaming algorithm (Figure 4.1) over a
// shape stream. Its passes run on the shared pass engine
// (GeomOptions.Engine): results are identical at every engine setting, and
// a shape pass that cannot be fully drained fails the solve with an error
// wrapping the engine's pass-failure sentinel instead of returning a cover
// of a partial stream.
func AlgGeomSC(repo ShapeStream, opts GeomOptions) (GeomResult, error) {
	return geom.AlgGeomSC(repo, opts)
}

// Generators.
type (
	PlantedConfig = gen.PlantedConfig
	// WeightedConfig parameterizes WeightedFunc/WeightedSlice (cost
	// distribution, bounds, seed).
	WeightedConfig = gen.WeightedConfig
	// WeightKind selects the cost distribution (unit, uniform, log-uniform).
	WeightKind = gen.WeightKind
	// VCWorstCaseConfig parameterizes VCWorstCase (stream length, VC dim).
	VCWorstCaseConfig = gen.VCWorstCaseConfig
)

var (
	// Planted builds an instance whose optimum is K by construction.
	Planted = gen.Planted
	// PlantedFunc is the out-of-core Planted: a deterministic per-set
	// generator (for NewFuncRepository or InstanceWriter) that never
	// materializes the family.
	PlantedFunc = gen.PlantedFunc
	// Uniform builds an instance with i.i.d. random sets, patched coverable.
	Uniform = gen.Uniform
	// Sparse builds an s-sparse instance (Section 6's regime).
	Sparse = gen.Sparse
	// GreedyTrap builds the classic Θ(log n)-gap greedy instance.
	GreedyTrap = gen.GreedyTrap
	// PlantedDisks builds a geometric instance covered by k planted disks.
	PlantedDisks = geom.PlantedDisks
	// PlantedRects builds a geometric instance covered by grid rectangles.
	PlantedRects = geom.PlantedRects
	// PlantedTriangles builds a geometric instance covered by fat triangles.
	PlantedTriangles = geom.PlantedTriangles
	// Figure12 builds the paper's quadratic-rectangles construction.
	Figure12 = geom.Figure12
	// WeightedFunc returns a deterministic pure per-set cost function (the
	// weight-side PlantedFunc); WeightedSlice materializes it as a vector.
	WeightedFunc  = gen.WeightedFunc
	WeightedSlice = gen.WeightedSlice
	// ParseWeightSpec parses "unit", "uniform:LO:HI", or "loguniform:LO:HI"
	// (the -weights flag surface; fill M and Seed on the result).
	ParseWeightSpec = gen.ParseWeightSpec
	// VCWorstCase builds the bounded-VC-dimension adversarial family with
	// OPT = 1 (experiment E19's instance).
	VCWorstCase = gen.VCWorstCase
)

// Instance serialization: a human-readable text format and a compact
// varint binary format.
var (
	ReadInstance        = setcover.Read
	WriteInstance       = setcover.Write
	ReadInstanceBinary  = setcover.ReadBinary
	WriteInstanceBinary = setcover.WriteBinary
)

// Serving layer (internal/serve, DESIGN.md §7): the concurrent solver
// service behind cmd/setcoverd. A Catalog registers instances — SCB1 files
// and named generators — under content digests computed once at
// registration; a Server exposes them over an HTTP JSON API (POST /v1/solve,
// GET /v1/instances, GET /v1/jobs/{id}, /healthz, /metrics) with a bounded
// solve queue (429 backpressure), an LRU result cache keyed by (instance
// digest, algorithm, δ, p, ε, seed), per-solve engine configuration so
// concurrent solves share the machine, and graceful shutdown that drains
// in-flight passes. Served covers are byte-identical to library (and
// cmd/setcover) solves of the same parameters.
type (
	// Server is the HTTP solver service over a Catalog.
	Server = serve.Server
	// ServerConfig tunes concurrency, queue depth, cache size, and the
	// default per-solve engine options.
	ServerConfig = serve.Config
	// Catalog is the registry of solvable instances.
	Catalog = serve.Catalog
	// CatalogInstance is one registered instance (name, digest, dims).
	CatalogInstance = serve.Instance
	// SolveRequest is the body of POST /v1/solve.
	SolveRequest = serve.SolveRequest
	// SolveEngineRequest is the per-request (or server-default) engine
	// override block: the wire form of EngineOptions.
	SolveEngineRequest = serve.EngineRequest
	// SolveResult is the per-solve stats snapshot (cover, passes, space
	// high-water, wall time) returned in responses.
	SolveResult = serve.SolveResult
)

var (
	// NewCatalog returns an empty instance catalog.
	NewCatalog = serve.NewCatalog
	// NewServer builds a solver service over a catalog.
	NewServer = serve.NewServer
)

// DefaultSolveQueue is a reasonable solve-queue depth for daemon deployments
// (cmd/setcoverd's -queue default). ServerConfig.MaxQueue itself is literal:
// 0 means no waiting room.
const DefaultSolveQueue = serve.DefaultMaxQueue

// Fleet layer (internal/fleet, DESIGN.md §8): the digest-routing HTTP router
// behind cmd/setcoverrt. A FleetRouter spreads POST /v1/solve across N
// setcoverd nodes by instance content digest (rendezvous hashing — sticky
// while a node lives, minimal remapping when membership changes), retries
// dead or draining nodes down the rendezvous order, and relays everything
// else verbatim. Point every node's ServerConfig.CacheDir at one shared
// directory and solved covers persist and replicate fleet-wide; the
// determinism contract is what makes any node's answer — cached or computed —
// byte-identical to any other's.
type (
	// FleetRouter routes solve traffic across a static fleet of nodes.
	FleetRouter = fleet.Router
	// FleetConfig tunes a FleetRouter (node list, retry bounds, timeouts).
	FleetConfig = fleet.Config
)

// NewFleetRouter builds a router over cfg.Nodes.
var NewFleetRouter = fleet.NewRouter

// DefaultFleetAttemptTimeout is FleetConfig's default per-node attempt budget
// (headers, not body: a streamed cover may relay for longer).
const DefaultFleetAttemptTimeout = fleet.DefaultAttemptTimeout

// FleetNodeHeader is the response header naming the backend node that
// produced a routed response.
const FleetNodeHeader = fleet.NodeHeader

// Observability (internal/obs, DESIGN.md §10): read-only pass tracing for
// the engine, and the request-correlation header the serving and fleet
// layers propagate. Set EngineOptions.Tracer to receive one PassTrace per
// completed pass — tracing never alters covers, pass counts, or space (the
// conformance suites pin traced and untraced solves byte-identical).
type (
	// PassTrace is one completed engine pass: what ran, how much data it
	// touched, how long it took.
	PassTrace = obs.PassTrace
	// Tracer receives a PassTrace after each pass. Implementations must be
	// safe for concurrent use when an engine is shared.
	Tracer = obs.Tracer
	// TracerFunc adapts a function to the Tracer interface.
	TracerFunc = obs.TracerFunc
	// TraceRecorder is a Tracer that appends every PassTrace to a slice —
	// the test and benchmark workhorse.
	TraceRecorder = obs.Recorder
	// SolveTrace is the phase-timing breakdown a {"trace":true} solve
	// request gets back in its response envelope (never cached).
	SolveTrace = serve.SolveTrace
)

// RequestIDHeader is the correlation header ("X-Request-ID") honored and
// echoed by setcoverd and minted/propagated by setcoverrt, so one id joins
// client, router, backend log line, and job view.
const RequestIDHeader = obs.RequestIDHeader

// Dynamic instances (internal/scdyn, DESIGN.md §11): a mutable repository
// over an SCB1 base file plus an additive delta log (append set / tombstone
// set), where every mutation mints a fresh content digest — a mutated
// instance is a NEW identity, so no digest-keyed cache anywhere in the stack
// can alias pre- and post-mutation results. Snapshot Views at any generation
// are ordinary Repositories; an incremental Solver maintains the exact
// greedy cover across delta batches, byte-identical to a from-scratch solve.
// Served via Catalog.AddDynamic / Catalog.Mutate, cmd/setcoverd -dyn,
// POST /v1/instances/{name}/mutate, and {"algo":"dyn","resolve":"delta"}.
type (
	// DynamicRepo is a mutable instance: SCB1 base + append-only delta log.
	DynamicRepo = scdyn.Repo
	// DynamicView is an immutable snapshot of a DynamicRepo at one
	// generation — a Repository usable with every solver.
	DynamicView = scdyn.View
	// DynamicOp is one mutation (append a set, or tombstone one by id).
	DynamicOp = scdyn.Op
	// DynamicOpKind tags a DynamicOp.
	DynamicOpKind = scdyn.OpKind
	// DynamicSolver maintains an exact greedy cover across mutations,
	// re-solving only the disturbed suffix of the selection trace.
	DynamicSolver = scdyn.Solver
	// MutateRequest is the body of POST /v1/instances/{name}/mutate.
	MutateRequest = serve.MutateRequest
	// MutateResponse reports the post-mutation identity (digest, generation).
	MutateResponse = serve.MutateResponse
)

const (
	// DynamicOpAppend appends a new set (ids are assigned densely after the
	// current maximum).
	DynamicOpAppend = scdyn.OpAppend
	// DynamicOpTombstone removes a set by id (the id stays allocated; the
	// set becomes empty).
	DynamicOpTombstone = scdyn.OpTombstone
	// DynamicLogSuffix is the delta-log filename suffix next to the base
	// SCB1 file.
	DynamicLogSuffix = scdyn.LogSuffix
)

var (
	// OpenDynamic opens (or creates alongside) a dynamic instance at an
	// SCB1 path, replaying and verifying any existing delta log.
	OpenDynamic = scdyn.Open
	// NewDynamicSolver builds an incremental solver over a DynamicRepo.
	NewDynamicSolver = scdyn.NewSolver
	// DynamicSolve runs the density-level greedy once over any Repository —
	// the stateless form of the incremental solver (algo "dyn").
	DynamicSolve = scdyn.Solve
)

// InstanceDigestHeader is the response header ("X-Instance-Digest") on which
// setcoverd reports the digest it actually resolved an instance to; the
// fleet router invalidates its name→digest cache the moment this disagrees
// with its routing decision.
const InstanceDigestHeader = obs.InstanceDigestHeader

// NewRequestID mints a 16-hex-digit correlation id.
var NewRequestID = obs.NewRequestID
