package streamsetcover_test

import (
	"fmt"

	ssc "repro"
)

// The basic workflow: generate an instance, stream it, cover it.
func ExampleIterSetCover() {
	in, _, opt, err := ssc.Planted(ssc.PlantedConfig{N: 400, M: 800, K: 8, Seed: 1})
	if err != nil {
		panic(err)
	}
	repo := ssc.NewRepository(in)
	res, err := ssc.IterSetCover(repo, ssc.Options{Delta: 0.5, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("valid cover:", in.IsCover(res.Cover))
	fmt.Println("passes within 2/delta:", res.Passes <= 4)
	fmt.Println("cover within 10x of opt:", len(res.Cover) <= 10*opt)
	// Output:
	// valid cover: true
	// passes within 2/delta: true
	// cover within 10x of opt: true
}

// The ε-partial variant covers at least a (1-ε) fraction with fewer sets.
func ExampleIterSetCover_partial() {
	in, _, _, err := ssc.Planted(ssc.PlantedConfig{N: 400, M: 800, K: 8, Seed: 1})
	if err != nil {
		panic(err)
	}
	full, _ := ssc.IterSetCover(ssc.NewRepository(in), ssc.Options{Delta: 0.5, Seed: 1})
	part, _ := ssc.IterSetCover(ssc.NewRepository(in), ssc.Options{Delta: 0.5, Seed: 1, PartialEps: 0.1})
	fmt.Println("partial satisfies 90% goal:", in.IsPartialCover(part.Cover, 0.1))
	fmt.Println("partial no larger than full:", len(part.Cover) <= len(full.Cover))
	// Output:
	// partial satisfies 90% goal: true
	// partial no larger than full: true
}

// One-pass baselines trade approximation for passes.
func ExampleEmekRosen() {
	in, _, _, err := ssc.Planted(ssc.PlantedConfig{N: 400, M: 800, K: 8, Seed: 2})
	if err != nil {
		panic(err)
	}
	st, err := ssc.EmekRosen(ssc.NewRepository(in))
	if err != nil {
		panic(err)
	}
	fmt.Println("passes:", st.Passes)
	fmt.Println("valid:", in.IsCover(st.Cover))
	// Output:
	// passes: 1
	// valid: true
}

// The geometric algorithm covers points with streamed shapes in Õ(n) space.
func ExampleAlgGeomSC() {
	gi, _, err := ssc.PlantedDisks(200, 800, 4, 3)
	if err != nil {
		panic(err)
	}
	repo := ssc.NewShapeRepo(gi)
	repo.Precompute()
	res, err := ssc.AlgGeomSC(repo, ssc.GeomOptions{Delta: 0.25, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("valid cover:", gi.IsCover(res.Cover))
	fmt.Println("constant passes:", res.Passes <= 13)
	// Output:
	// valid cover: true
	// constant passes: true
}

// Instances round-trip through the text format.
func ExampleWriteInstance() {
	in := &ssc.Instance{N: 3, Sets: []ssc.Set{{Elems: []ssc.Elem{0, 1}}, {Elems: []ssc.Elem{2}}}}
	in.Normalize()
	var s stringsBuilder
	if err := ssc.WriteInstance(&s, in); err != nil {
		panic(err)
	}
	fmt.Print(s.String())
	// Output:
	// setcover 3 2
	// 0 0 1
	// 1 2
}

// stringsBuilder is a minimal io.Writer to keep the example self-contained.
type stringsBuilder struct{ b []byte }

func (s *stringsBuilder) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *stringsBuilder) String() string              { return string(s.b) }
