// Geocover: geometric set cover (Section 4) — choose the fewest wireless
// towers (disks) to cover every client location, with candidate tower sites
// streaming from a huge catalog. algGeomSC (Figure 4.1) needs only Õ(n)
// memory — independent of the number of candidate sites — and a constant
// number of catalog scans (Theorem 4.6).
//
// The demo also rebuilds the paper's Figure 1.2 to show why near-linear
// space is non-trivial: n²/4 distinct rectangles can each hold exactly two
// points, so storing raw projections is hopeless, while the canonical
// representation stays near-linear.
package main

import (
	"fmt"
	"log"

	ssc "repro"
	"repro/internal/geom"
)

func main() {
	const (
		clients = 1500
		sites   = 12000
		planted = 16
	)
	in, plantedIDs, err := ssc.PlantedDisks(clients, sites, planted, 3)
	if err != nil {
		log.Fatal(err)
	}
	repo := ssc.NewShapeRepo(in)
	repo.Precompute() // simulator-speed cache; costs no algorithm memory

	res, err := ssc.AlgGeomSC(repo, ssc.GeomOptions{Delta: 0.25, Seed: 3, KMin: 4, KMax: 64})
	if err != nil {
		log.Fatal(err)
	}
	if !in.IsCover(res.Cover) {
		log.Fatal("algGeomSC returned an invalid tower plan")
	}
	fmt.Printf("clients: %d, candidate sites: %d, planted plan: %d towers\n",
		clients, sites, len(plantedIDs))
	fmt.Printf("algGeomSC: %d towers, %d passes, %d words of memory\n",
		len(res.Cover), res.Passes, res.SpaceWords)
	fmt.Printf("canonical pieces stored (peak): %d; shallow projections seen: %d\n\n",
		res.CanonicalPiecesPeak, res.RawProjectionsSeen)

	// Figure 1.2: why raw projection storage cannot work for rectangles.
	fig, err := ssc.Figure12(128)
	if err != nil {
		log.Fatal(err)
	}
	tree := geom.NewXSplitTree(fig.Points)
	store := geom.NewCanonicalStore()
	rawWords := int64(0)
	for _, s := range fig.Shapes {
		proj := geom.ContainedPoints(s, fig.Points, nil)
		rawWords += int64(len(proj)+1) / 2
		geom.CanonicalPieces(store, tree, s, proj, fig.Points)
	}
	fmt.Printf("Figure 1.2 with n=%d points: %d distinct rectangles\n", fig.N(), fig.M())
	fmt.Printf("raw projection storage: %d words; canonical pieces: %d (%d words)\n",
		rawWords, store.Count(), store.Words())
	fmt.Printf("compression factor: %.1fx — the Lemma 4.2 splitting in action\n",
		float64(rawWords)/float64(store.Words()))
}
