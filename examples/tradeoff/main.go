// Tradeoff: sweep iterSetCover's δ to expose Theorem 2.8's pass/space curve
// on one instance — the core claim of the paper in a single table. Smaller δ
// means more passes (2/δ) and less memory (Õ(m·n^δ)); the approximation
// stays logarithmic throughout.
package main

import (
	"fmt"
	"log"

	ssc "repro"
)

func main() {
	const (
		n = 4096
		m = 8192
		k = 32
	)
	in, _, opt, err := ssc.Planted(ssc.PlantedConfig{N: n, M: m, K: k, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	inputWords := int64(0)
	for _, s := range in.Sets {
		inputWords += int64(len(s.Elems)+1) / 2
	}
	fmt.Printf("instance: n=%d m=%d OPT=%d; raw input = %d words\n\n", n, m, opt, inputWords)
	fmt.Printf("%7s %8s %14s %16s %7s %7s\n",
		"delta", "passes", "space(words)", "% of input", "cover", "ratio")

	for _, delta := range []float64{1, 0.5, 1.0 / 3.0, 0.25} {
		res, err := ssc.IterSetCover(ssc.NewRepository(in), ssc.Options{Delta: delta, Seed: 5})
		if err != nil {
			log.Fatalf("delta=%v: %v", delta, err)
		}
		if !in.IsCover(res.Cover) {
			log.Fatalf("delta=%v: invalid cover", delta)
		}
		fmt.Printf("%7.2f %8d %14d %15.1f%% %7d %7.2f\n",
			delta, res.Passes, res.SpaceWords,
			100*float64(res.SpaceWords)/float64(inputWords),
			len(res.Cover), res.Ratio(opt))
	}
	fmt.Println("\npasses ≈ 2/δ while space tracks m·n^δ — the Theorem 2.8 trade-off;")
	fmt.Println("Theorem 5.4 shows this curve is essentially the best possible.")
}
