// Quickstart: the smallest possible tour of the library — build an instance,
// stream it, run the paper's algorithm, inspect the verified result.
package main

import (
	"fmt"
	"log"

	ssc "repro"
)

func main() {
	// A tiny hand-written instance: 6 elements, 4 sets.
	in := &ssc.Instance{
		N: 6,
		Sets: []ssc.Set{
			{Elems: []ssc.Elem{0, 1, 2}},
			{Elems: []ssc.Elem{2, 3}},
			{Elems: []ssc.Elem{3, 4, 5}},
			{Elems: []ssc.Elem{0, 5}},
		},
	}
	in.Normalize()

	// The streaming model: sets live in a read-only repository; every scan
	// is counted as a pass.
	repo := ssc.NewRepository(in)

	// iterSetCover (Figure 1.3 / Theorem 2.8): 2/δ passes, Õ(m·n^δ) space.
	res, err := ssc.IterSetCover(repo, ssc.Options{Delta: 0.5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cover: %v (valid=%v)\n", res.Cover, in.IsCover(res.Cover))
	fmt.Printf("passes: %d, space: %d words, best guess k: %d\n",
		res.Passes, res.SpaceWords, res.BestK)

	// Compare with the one-pass store-everything greedy strawman.
	greedy, err := ssc.OnePassGreedy(ssc.NewRepository(in))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy-1pass: cover %d sets, %d passes, %d words\n",
		len(greedy.Cover), greedy.Passes, greedy.SpaceWords)
}
