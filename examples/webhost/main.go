// Webhost: the web-host analysis workload from the paper's introduction
// ([CKT10]-style): a crawler must pick the fewest mirror hosts whose
// combined page inventories cover a target URL corpus. Inventories are far
// too large to keep in memory, but they can be scanned from the catalog —
// exactly the streaming SetCover model.
//
// The demo builds a synthetic mirror network with a planted optimal fleet,
// then compares iterSetCover against the one-pass greedy strawman and the
// one-pass Emek–Rosén algorithm on passes, memory, and fleet size.
package main

import (
	"fmt"
	"log"

	ssc "repro"
)

func main() {
	const (
		urls  = 5000 // target corpus size (elements)
		hosts = 8000 // candidate mirror hosts (sets)
		fleet = 40   // planted optimal fleet size
	)
	// Planted instance: the corpus is partitioned across `fleet` primary
	// hosts; the rest are partial mirrors of comparable inventory size.
	in, primaries, opt, err := ssc.Planted(ssc.PlantedConfig{
		N: urls, M: hosts, K: fleet, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d URLs, %d candidate hosts, planted fleet: %d primaries\n",
		urls, hosts, len(primaries))

	type runner struct {
		name string
		run  func() (ssc.Stats, error)
	}
	runners := []runner{
		{"iterSetCover δ=1/2", func() (ssc.Stats, error) {
			r, err := ssc.IterSetCover(ssc.NewRepository(in), ssc.Options{Delta: 0.5, Seed: 7})
			return r.Stats, err
		}},
		{"iterSetCover δ=1/4", func() (ssc.Stats, error) {
			r, err := ssc.IterSetCover(ssc.NewRepository(in), ssc.Options{Delta: 0.25, Seed: 7})
			return r.Stats, err
		}},
		{"greedy (store all)", func() (ssc.Stats, error) {
			return ssc.OnePassGreedy(ssc.NewRepository(in))
		}},
		{"Emek-Rosén (1 pass)", func() (ssc.Stats, error) {
			return ssc.EmekRosen(ssc.NewRepository(in))
		}},
	}

	fmt.Printf("\n%-22s %8s %8s %12s %8s\n", "algorithm", "fleet", "passes", "memory(w)", "ratio")
	for _, r := range runners {
		st, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		st = st.Verify(in)
		if !st.Valid {
			log.Fatalf("%s returned an invalid fleet", r.name)
		}
		fmt.Printf("%-22s %8d %8d %12d %8.2f\n",
			r.name, len(st.Cover), st.Passes, st.SpaceWords, st.Ratio(opt))
	}
	fmt.Println("\niterSetCover reads the catalog a handful of times and keeps only")
	fmt.Println("sampled projections in memory; greedy needs the whole catalog resident.")
}
