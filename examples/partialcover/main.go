// Partialcover: the ε-Partial Set Cover problem — cover at least a (1-ε)
// fraction of the universe — which is the generalization [ER14] and [CW16]
// actually prove their streaming bounds for (paper, Section 1). A monitoring
// deployment rarely needs 100% coverage; tolerating a small uncovered tail
// buys a much smaller cover.
//
// The demo sweeps ε and shows the cover shrinking across three algorithms
// while the coverage guarantee holds.
package main

import (
	"fmt"
	"log"

	ssc "repro"
)

func main() {
	const (
		n = 3000
		m = 6000
		k = 25
	)
	in, _, opt, err := ssc.Planted(ssc.PlantedConfig{N: n, M: m, K: k, Seed: 13})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: n=%d sensors, m=%d probes, full-coverage OPT=%d\n\n", n, m, opt)
	fmt.Printf("%-26s %6s %8s %10s %10s\n", "algorithm", "eps", "cover", "coverage", "goal")

	for _, eps := range []float64{0, 0.01, 0.05, 0.1, 0.25} {
		res, err := ssc.IterSetCover(ssc.NewRepository(in), ssc.Options{
			Delta: 0.5, Seed: 13, PartialEps: eps,
		})
		if err != nil {
			log.Fatalf("iter eps=%v: %v", eps, err)
		}
		report(in, "iterSetCover δ=1/2", eps, res.Cover)

		st, err := ssc.EmekRosenPartial(ssc.NewRepository(in), eps)
		if err != nil {
			log.Fatalf("er14 eps=%v: %v", eps, err)
		}
		report(in, "Emek-Rosén (1 pass)", eps, st.Cover)

		st, err = ssc.ChakrabartiWirthPartial(ssc.NewRepository(in), 3, eps)
		if err != nil {
			log.Fatalf("cw16 eps=%v: %v", eps, err)
		}
		report(in, "Chakrabarti-Wirth p=3", eps, st.Cover)
		fmt.Println()
	}
	fmt.Println("every row satisfies coverage >= 1-eps; tolerating a small tail")
	fmt.Println("shrinks the cover substantially — the ε-Partial trade-off.")
}

func report(in *ssc.Instance, name string, eps float64, cover []int) {
	frac := in.CoverageFraction(cover)
	if !in.IsPartialCover(cover, eps) {
		log.Fatalf("%s eps=%v: coverage %.3f below goal", name, eps, frac)
	}
	fmt.Printf("%-26s %6.2f %8d %10.3f %10.3f\n", name, eps, len(cover), frac, 1-eps)
}
