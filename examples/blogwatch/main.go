// Blogwatch: the multi-topic blog-watch scenario that motivated streaming
// set cover in Saha–Getoor [SG09]: pick the fewest feeds (blogs) so that
// every topic of interest is covered by at least one subscribed feed, while
// feed descriptions stream from a catalog too large to hold.
//
// The demo runs the pass-budget family: one-pass (Emek–Rosén), p-pass
// (Chakrabarti–Wirth), log n-pass (threshold greedy) and the paper's
// iterSetCover, showing how each extra pass buys approximation quality at
// sub-linear memory.
package main

import (
	"fmt"
	"log"

	ssc "repro"
)

func main() {
	const (
		topics = 3000
		feeds  = 6000
		niche  = 30 // planted minimal subscription list
	)
	in, _, opt, err := ssc.Planted(ssc.PlantedConfig{N: topics, M: feeds, K: niche, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blogwatch: %d topics, %d feeds, optimal subscription list: %d feeds\n\n", topics, feeds, opt)

	type row struct {
		name string
		st   ssc.Stats
	}
	var rows []row
	add := func(name string, st ssc.Stats, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		st = st.Verify(in)
		if !st.Valid {
			log.Fatalf("%s: invalid subscription list", name)
		}
		rows = append(rows, row{name, st})
	}

	st, err := ssc.EmekRosen(ssc.NewRepository(in))
	add("1 pass (ER14)", st, err)
	st, err = ssc.ChakrabartiWirth(ssc.NewRepository(in), 2)
	add("2 passes (CW16)", st, err)
	st, err = ssc.ChakrabartiWirth(ssc.NewRepository(in), 4)
	add("4 passes (CW16)", st, err)
	st, err = ssc.ThresholdGreedy(ssc.NewRepository(in))
	add("log n passes (SG09)", st, err)
	res, err := ssc.IterSetCover(ssc.NewRepository(in), ssc.Options{Delta: 0.5, Seed: 11})
	add("4 passes (iterSetCover)", res.Stats, err)

	fmt.Printf("%-26s %6s %8s %10s %7s\n", "strategy", "feeds", "passes", "memory(w)", "ratio")
	for _, r := range rows {
		fmt.Printf("%-26s %6d %8d %10d %7.2f\n",
			r.name, len(r.st.Cover), r.st.Passes, r.st.SpaceWords, r.st.Ratio(opt))
	}
	fmt.Println("\nEach pass over the feed catalog buys a better subscription list;")
	fmt.Println("iterSetCover gets the log-factor list quality at a fixed 2/δ passes.")
}
