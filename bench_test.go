package streamsetcover

// One benchmark per paper artifact (table/figure/theorem), as indexed in
// DESIGN.md §4. Each benchmark regenerates the corresponding experiment
// table through internal/experiments, so `go test -bench=.` reproduces the
// full evaluation; cmd/experiments prints the same tables for reading.

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/setcover"
	"repro/internal/stream"
)

var benchSink experiments.Table

// BenchmarkFig11_AlgorithmTable regenerates the measured version of the
// paper's Figure 1.1 (every upper-bound algorithm on one instance).
func BenchmarkFig11_AlgorithmTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E1Figure11(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkThm28_DeltaSweep regenerates the Theorem 2.8 pass/space/quality
// trade-off curve for iterSetCover.
func BenchmarkThm28_DeltaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E2DeltaSweep(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkFig12_QuadraticRectangles regenerates the Figure 1.2 construction
// and its canonical-representation compression.
func BenchmarkFig12_QuadraticRectangles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E3Figure12(false)
	}
	reportRows(b)
}

// BenchmarkThm46_Geometric regenerates the Theorem 4.6 table: algGeomSC on
// disks, rectangles, and fat triangles with space flat in m.
func BenchmarkThm46_Geometric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E4Geometric(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkLem44_CanonicalCounts regenerates the shallow-range canonical
// counting table (Lemma 4.4).
func BenchmarkLem44_CanonicalCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E5CanonicalCounts(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkThm38_RecoverBits regenerates the Section 3 decoding experiment
// (Figure 3.1 / Theorem 3.8).
func BenchmarkThm38_RecoverBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E6RecoverBits(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkThm54_ISCReduction regenerates the Section 5 reduction exactness
// check (Lemmas 5.5–5.7).
func BenchmarkThm54_ISCReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E7ISCReduction(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkThm66_SparseLB regenerates the Section 6 sparse-instance table.
func BenchmarkThm66_SparseLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E8SparseLB(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkAblation_SizeTest regenerates the E9 size-test ablation.
func BenchmarkAblation_SizeTest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E9AblationSizeTest(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkAblation_Sampling regenerates the E10 sampling ablation.
func BenchmarkAblation_Sampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E10AblationSampling(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkAblation_OfflineSolver regenerates the E11 ρ ablation.
func BenchmarkAblation_OfflineSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E11AblationOffline(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkLem25_RelativeApprox regenerates the Lemma 2.5 sampling check.
func BenchmarkLem25_RelativeApprox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E12RelativeApprox(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkExt_PartialCover regenerates the ε-Partial Set Cover table (E13).
func BenchmarkExt_PartialCover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E13PartialCover(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkExt_CanonicalAblation regenerates the Lemma 4.2 splitting
// ablation on the Figure 1.2 stream (E14).
func BenchmarkExt_CanonicalAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E14CanonicalAblation(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkObs59_ProtocolSimulation regenerates the Observation 5.9
// streaming-to-communication table (E15).
func BenchmarkObs59_ProtocolSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E15ProtocolSimulation(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkSG09_MaxKCover regenerates the Max k-Cover table (E16).
func BenchmarkSG09_MaxKCover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E16MaxKCover(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkExt_TightnessTraps regenerates the worst-case trap table (E17).
func BenchmarkExt_TightnessTraps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E17Tightness(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkThm28_ScalingSeries regenerates the n-sweep series (E18).
func BenchmarkThm28_ScalingSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E18Scaling(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkBatchedPrimalDual regenerates the weighted primal-dual table
// over the VC worst-case families (E19).
func BenchmarkBatchedPrimalDual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = experiments.E19PrimalDual(int64(i)+1, false)
	}
	reportRows(b)
}

// BenchmarkEngineFanout measures the shared pass engine itself: one physical
// pass over a Planted instance (n=50k, m=100k) fanned out to 16 observers,
// each doing iterSetCover's per-set size-test work (an intersection count
// against its own uncovered bitset) — the Lemma 2.1 "parallel guesses share
// passes" workload. Sequential (Workers=1) vs. batched-parallel
// (Workers=GOMAXPROCS) isolates the engine's wall-clock win; results are
// identical by the engine's determinism contract.
func BenchmarkEngineFanout(b *testing.B) {
	const n, m, guesses = 50_000, 100_000, 16
	in, _, _, err := gen.Planted(gen.PlantedConfig{N: n, M: m, K: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	repo := stream.NewSliceRepo(in)
	// Each observer's accumulator is padded to its own cache line: adjacent
	// int64 slots written per-set from different workers would false-share
	// and suppress the very fan-out win this benchmark measures.
	type fanoutState struct {
		uncovered *bitset.Bitset
		gain      int64
		_         [48]byte
	}
	mkObservers := func() []engine.Observer {
		obs := make([]engine.Observer, guesses)
		states := make([]fanoutState, guesses)
		for i := range obs {
			st := &states[i]
			st.uncovered = bitset.New(n)
			st.uncovered.Fill()
			obs[i] = engine.Func(func(batch []setcover.Set) {
				for _, s := range batch {
					st.gain += int64(st.uncovered.IntersectionWithSlice(s.Elems))
				}
			})
		}
		return obs
	}
	sweep := []int{1, 2, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, workers := range sweep {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := engine.New(engine.Options{Workers: workers})
			obs := mkObservers()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Run(repo, obs...)
			}
			b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msets/s")
		})
	}
}

func reportRows(b *testing.B) {
	b.ReportMetric(float64(len(benchSink.Rows)), "rows")
	benchSink.Render(io.Discard)
}
