package streamsetcover

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// End-to-end smoke test of the public façade: generate, stream, solve with
// the main algorithm and two baselines, round-trip through the text format.
func TestPublicAPIEndToEnd(t *testing.T) {
	in, plantedIDs, opt, err := Planted(PlantedConfig{N: 300, M: 600, K: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(plantedIDs) || opt != 6 {
		t.Fatal("planted generator misbehaved through the façade")
	}

	repo := NewRepository(in)
	res, err := IterSetCover(repo, Options{Delta: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(res.Cover) {
		t.Fatal("IterSetCover cover invalid")
	}
	if res.Passes > 4 {
		t.Fatalf("passes = %d, want <= 4 at delta 1/2", res.Passes)
	}

	er, err := EmekRosen(NewRepository(in))
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(er.Cover) {
		t.Fatal("EmekRosen cover invalid")
	}
	cw, err := ChakrabartiWirth(NewRepository(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(cw.Cover) {
		t.Fatal("ChakrabartiWirth cover invalid")
	}

	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != in.N || back.M() != in.M() {
		t.Fatal("instance text round-trip mismatch")
	}
}

func TestPublicAPIGeometric(t *testing.T) {
	gi, planted, err := PlantedDisks(200, 400, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	repo := NewShapeRepo(gi)
	repo.Precompute()
	res, err := AlgGeomSC(repo, GeomOptions{Delta: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !gi.IsCover(res.Cover) {
		t.Fatal("AlgGeomSC cover invalid")
	}
	_ = planted

	fig, err := Figure12(16)
	if err != nil {
		t.Fatal(err)
	}
	if fig.M() != 64 {
		t.Fatalf("Figure12 m = %d", fig.M())
	}
}

// A truncated SCB1 instance must fail loudly through the public API: the
// solve entry points return the decode error, never a valid-looking cover
// built from the prefix of the family that still decodes. This is the
// regression test for the silent-truncation bug (library callers used to get
// a "valid" partial-stream cover unless they knew to poll DiskRepo.Err).
func TestPublicAPITruncatedFileFailsLoudly(t *testing.T) {
	in, _, _, err := Planted(PlantedConfig{N: 300, M: 600, K: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	full := filepath.Join(t.TempDir(), "full.scb")
	if err := WriteInstanceFile(full, in); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.scb")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := OpenFile(trunc)
	if err != nil {
		t.Fatalf("truncated file should still open (header intact): %v", err)
	}
	defer d.Close()

	if res, err := IterSetCover(d, Options{Delta: 0.5, Seed: 1}); err == nil {
		t.Fatalf("IterSetCover returned a cover of %d sets from a truncated stream", len(res.Cover))
	}
	if st, err := EmekRosen(d); err == nil {
		t.Fatalf("EmekRosen returned a cover of %d sets from a truncated stream", len(st.Cover))
	}
	if st, err := SahaGetoorSetCover(d); err == nil {
		t.Fatalf("SahaGetoorSetCover returned a cover of %d sets from a truncated stream", len(st.Cover))
	}
	if _, _, err := VerifyCover(d, []int{0, 1, 2}, EngineOptions{}); err == nil {
		t.Fatal("VerifyCover reported counts from a truncated stream without error")
	}
}

// VerifyCover over a healthy disk repository reports full coverage for a
// real cover and no error — and still works after a failed pass on the same
// repository (pass errors are scoped per pass; DiskRepo.Err stays sticky for
// diagnostics only).
func TestPublicAPIVerifyCoverDisk(t *testing.T) {
	in, plantedIDs, _, err := Planted(PlantedConfig{N: 300, M: 600, K: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "full.scb")
	if err := WriteInstanceFile(path, in); err != nil {
		t.Fatal(err)
	}
	d, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for _, opts := range []EngineOptions{{}, {Workers: 1}, {Workers: 4, DisableSegmented: true}} {
		covered, n, err := VerifyCover(d, plantedIDs, opts)
		if err != nil {
			t.Fatalf("opts %+v: verify pass failed: %v", opts, err)
		}
		if covered != n {
			t.Fatalf("opts %+v: planted cover leaves %d of %d uncovered", opts, n-covered, n)
		}
	}
}

func TestPublicAPIDefaults(t *testing.T) {
	o := DefaultOptions()
	if o.Delta != 0.5 {
		t.Fatalf("default delta = %v", o.Delta)
	}
	var g GreedySolver
	if g.Rho(100) <= 1 {
		t.Fatal("greedy rho should exceed 1")
	}
	var x ExactSolver
	if x.Rho(100) != 1 {
		t.Fatal("exact rho should be 1")
	}
}
