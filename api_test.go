package streamsetcover

import (
	"bytes"
	"testing"
)

// End-to-end smoke test of the public façade: generate, stream, solve with
// the main algorithm and two baselines, round-trip through the text format.
func TestPublicAPIEndToEnd(t *testing.T) {
	in, plantedIDs, opt, err := Planted(PlantedConfig{N: 300, M: 600, K: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(plantedIDs) || opt != 6 {
		t.Fatal("planted generator misbehaved through the façade")
	}

	repo := NewRepository(in)
	res, err := IterSetCover(repo, Options{Delta: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(res.Cover) {
		t.Fatal("IterSetCover cover invalid")
	}
	if res.Passes > 4 {
		t.Fatalf("passes = %d, want <= 4 at delta 1/2", res.Passes)
	}

	er, err := EmekRosen(NewRepository(in))
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(er.Cover) {
		t.Fatal("EmekRosen cover invalid")
	}
	cw, err := ChakrabartiWirth(NewRepository(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !in.IsCover(cw.Cover) {
		t.Fatal("ChakrabartiWirth cover invalid")
	}

	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != in.N || back.M() != in.M() {
		t.Fatal("instance text round-trip mismatch")
	}
}

func TestPublicAPIGeometric(t *testing.T) {
	gi, planted, err := PlantedDisks(200, 400, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	repo := NewShapeRepo(gi)
	repo.Precompute()
	res, err := AlgGeomSC(repo, GeomOptions{Delta: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !gi.IsCover(res.Cover) {
		t.Fatal("AlgGeomSC cover invalid")
	}
	_ = planted

	fig, err := Figure12(16)
	if err != nil {
		t.Fatal(err)
	}
	if fig.M() != 64 {
		t.Fatalf("Figure12 m = %d", fig.M())
	}
}

func TestPublicAPIDefaults(t *testing.T) {
	o := DefaultOptions()
	if o.Delta != 0.5 {
		t.Fatalf("default delta = %v", o.Delta)
	}
	var g GreedySolver
	if g.Rho(100) <= 1 {
		t.Fatal("greedy rho should exceed 1")
	}
	var x ExactSolver
	if x.Rho(100) != 1 {
		t.Fatal("exact rho should be 1")
	}
}
